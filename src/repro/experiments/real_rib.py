"""Real-RIB experiments: the paper's models on Internet-scale tables.

The paper measures merging efficiency α, BRAM footprint and power on
synthetic tables of at most 3,725 prefixes.  These experiments re-run
that pipeline on the committed RIS-shaped RIB fixture
(``examples/data/ris_sample.bgpdump.txt``, see docs/TABLES.md for
provenance): the MRT/``TABLE_DUMP2`` ingest path parses it, K virtual
tables are cut from the real table, and the *structural* merge —
:func:`repro.virt.merged.merge_tries`, not the modeled α — yields the
measured merging efficiency, stage map and power.

Three experiments register here:

``real_rib``
    α + BRAM + power for separate (VS) vs merged (VM) engines on an
    edge-sized and a core-sized slice of the real v4 table.
``real_rib_churn``
    Announce/withdraw churn replayed against the running sharded
    service: live power telemetry vs the analytical model at the
    measured activity (the PR-5 degraded-model agreement bound), plus
    the churn-derived BRAM write rate.
``real_rib_v6``
    The IPv6 outlook re-run on the fixture's real v6 prefixes, with a
    *measured* merge instead of the modeled α.

Cache-key caveat: the fixture is a file, invisible to the engine's
parameter hashing — so its content hash is registered as a
single-value ``fixture_sha`` axis, which folds the file content into
every run's spec hash.  Editing the fixture invalidates the cached
results; nothing else does.
"""

from __future__ import annotations

import asyncio
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core.power import AnalyticalPowerModel
from repro.fpga.bram import pack_stage_memory
from repro.fpga.power_report import XPowerAnalyzer
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.timing import achievable_fmax_mhz
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import StageMemoryMap, map_trie_to_stages
from repro.iplookup.mrt import (
    RibDataset,
    downsample,
    file_sha256,
    load_dataset,
    virtual_tables_from_table,
)
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.iplookup.updates import apply_updates, effective_write_rate, synthesize_churn
from repro.obs.power import PowerTelemetrySampler
from repro.obs.registry import REGISTRY
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import bits_to_mb, gbps, w_to_mw
from repro.virt.merged import merge_tries
from repro.virt.schemes import Scheme

__all__ = [
    "FIXTURE_PATH",
    "FIXTURE_SHA",
    "SLICE_SIZES",
    "fixture_dataset",
    "run_real_rib",
    "run_real_rib_churn",
    "run_real_rib_v6",
]

#: the committed fixture the experiments are keyed to
FIXTURE_PATH = (
    Path(__file__).resolve().parents[3] / "examples" / "data" / "ris_sample.bgpdump.txt"
)

#: content hash folded into every run's spec hash (cache-key caveat:
#: file-backed inputs are invisible to parameter hashing without this)
FIXTURE_SHA = file_sha256(str(FIXTURE_PATH))[:16]

#: routes per table slice; ``core`` means the full fixture table
SLICE_SIZES = {"edge": 1200, "core": None}

_UTILIZATION = 0.3  # placement utilization assumed for fmax, as in ipv6
_SEED = 2012


@lru_cache(maxsize=1)
def fixture_dataset() -> RibDataset:
    """Parse the committed fixture once per process."""
    return load_dataset(str(FIXTURE_PATH), name="ris_sample")


def _slice_table(table_slice: str) -> RoutingTable:
    """The v4 table at one slice size (deterministic downsample)."""
    if table_slice not in SLICE_SIZES:
        known = ", ".join(sorted(SLICE_SIZES))
        raise ValueError(f"unknown table_slice {table_slice!r}; known: {known}")
    table = fixture_dataset().v4
    target = SLICE_SIZES[table_slice]
    if target is None:
        return table
    return downsample(table, target, seed=_SEED)


def _blocks18(stage_map: StageMemoryMap) -> int:
    """Total 18 Kb-equivalent BRAM blocks across every stage."""
    return sum(
        pack_stage_memory(int(bits)).total_blocks18_equivalent
        for bits in stage_map.bits_per_stage
        if bits
    )


@register(
    "real_rib",
    axes={"table_slice": ("edge", "core"), "fixture_sha": (FIXTURE_SHA,)},
    tags=("real-rib", "extras"),
)
def run_real_rib(
    table_slice: str = "core",
    fixture_sha: str = FIXTURE_SHA,
    k: int = 8,
    shared_fraction: float = 0.5,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """Measured α/BRAM/power: separate vs merged engines on a real slice."""
    table = _slice_table(table_slice)
    virtuals = virtual_tables_from_table(
        table, k, shared_fraction=shared_fraction, seed=_SEED
    )
    singles = [leaf_push(UnibitTrie(t)) for t in virtuals]
    merged = merge_tries([UnibitTrie(t) for t in virtuals])
    n_stages = max(
        max(t.depth() for t in singles), merged.structure.depth(), 1
    )
    single_maps = [map_trie_to_stages(t.stats(), n_stages) for t in singles]
    merged_map = map_trie_to_stages(merged.stats(), n_stages, nhi_vector_width=k)
    model = AnalyticalPowerModel(grade)

    rows = []
    # separate engines (VS): K engines on one device, uniform load
    widest = max(
        pack_stage_memory(m.widest_stage_bits()).total_blocks18_equivalent
        for m in single_maps
    )
    fmax_vs = achievable_fmax_mhz(grade, widest, _UTILIZATION)
    power_vs = model.power_vs(single_maps, fmax_vs, np.full(k, 1.0 / k))
    rows.append(
        {
            "memory_Mb": bits_to_mb(sum(m.total_bits for m in single_maps)),
            "bram_blocks18": sum(map(_blocks18, single_maps)),
            "fmax_MHz": fmax_vs,
            "total_W": power_vs.total_w,
            "mW_per_Gbps": w_to_mw(power_vs.total_w) / (k * gbps(fmax_vs)),
        }
    )
    # merged engine (VM) at the *measured* merging efficiency
    widest_m = pack_stage_memory(merged_map.widest_stage_bits()).total_blocks18_equivalent
    fmax_vm = achievable_fmax_mhz(grade, widest_m, _UTILIZATION)
    power_vm = model.power_vm(merged_map, fmax_vm)
    rows.append(
        {
            "memory_Mb": bits_to_mb(merged_map.total_bits),
            "bram_blocks18": _blocks18(merged_map),
            "fmax_MHz": fmax_vm,
            "total_W": power_vm.total_w,
            "mW_per_Gbps": w_to_mw(power_vm.total_w) / gbps(fmax_vm),
        }
    )

    result = ExperimentResult(
        experiment_id="real_rib",
        title=(
            f"Real RIB ({table_slice} slice, {len(table)} routes): "
            f"separate vs merged engines, K={k}"
        ),
        x_label="engine organisation",
        x_values=np.arange(2, dtype=float),
    )
    for key in rows[0]:
        result.add_series(key, [row[key] for row in rows])
    result.add_series(
        "alpha", [0.0, merged.global_alpha]
    )
    result.add_note("row 0: separate per-VN engines (VS); row 1: merged engine (VM)")
    result.add_note(
        f"measured merging efficiency: global α = {merged.global_alpha:.3f}, "
        f"pairwise α = {merged.pairwise_alpha:.3f} "
        f"(paper's synthetic tables: α ≈ 0.8 at high overlap)"
    )
    result.add_note(
        f"pipeline depth {n_stages} stages (real /32 more-specifics exceed "
        f"the paper's 28); fixture sha256 {fixture_sha}"
    )
    return result


@register(
    "real_rib_churn",
    axes={"fixture_sha": (FIXTURE_SHA,)},
    tags=("real-rib", "extras"),
)
def run_real_rib_churn(
    fixture_sha: str = FIXTURE_SHA,
    k: int = 4,
    n_batches: int = 4,
    per_vn: int = 600,
    n_updates: int = 400,
    updates_per_second: float = 1000.0,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """Churn replay through the sharded service, live vs analytical power.

    Serves fixture-derived traffic through a 2-shard
    :class:`~repro.serve.frontend.ShardedLookupService` with live power
    telemetry on, then re-evaluates the analytical model at the
    measured activity — the same 1%-agreement bound the PR-5
    degraded-model smoke pins.  An announce/withdraw stream synthesized
    from the real table is replayed through
    :mod:`repro.iplookup.updates` to derive the effective BRAM write
    rate the churn imposes.
    """
    from repro.serve.frontend import ShardedLookupService

    table = downsample(fixture_dataset().v4, 800, seed=_SEED)
    virtuals = virtual_tables_from_table(table, k, shared_fraction=0.5, seed=_SEED)
    rho = 0.5
    sampler = PowerTelemetrySampler(Scheme.VS, k, grade=grade)
    rng = np.random.default_rng(_SEED)

    def batch() -> tuple[np.ndarray, np.ndarray]:
        addresses = np.empty(per_vn * k, dtype=np.uint32)
        vnids = np.repeat(np.arange(k, dtype=np.int64), per_vn)
        for vn in range(k):
            routes = virtuals[vn].routes()
            picks = rng.integers(0, len(routes), size=per_vn)
            addrs = np.array(
                [
                    routes[i].prefix.value
                    | int(rng.integers(0, 1 << (32 - routes[i].prefix.length)))
                    if routes[i].prefix.length < 32
                    else routes[i].prefix.value
                    for i in picks
                ],
                dtype=np.uint32,
            )
            addresses[vn * per_vn : (vn + 1) * per_vn] = addrs
        return addresses, vnids

    running: list[float] = []

    async def drive() -> "object":
        async with ShardedLookupService(
            virtuals,
            Scheme.VS,
            n_shards=2,
            n_stages=None,  # auto-depth: the real table carries /32s
            offered_load_fraction=rho,
            power_sampler=sampler,
            transport="inline",
        ) as service:
            trace = None
            for _ in range(n_batches):
                addresses, vnids = batch()
                _, trace = await service.serve(addresses, vnids)
                running.append(sampler.running_total_w)
            return trace

    REGISTRY.enable()
    try:
        trace = asyncio.run(drive())
        live_w = sampler.running_total_w
    finally:
        REGISTRY.disable()
        REGISTRY.clear()

    # analytical side: the XPA-like reporter at the measured activity
    # (engine shares times the batch's measured duty cycle — the same
    # inputs the live sampler observes)
    loads = np.asarray(trace.engine_loads(), dtype=float)
    report = XPowerAnalyzer().report(
        sampler.scenario.placed,
        sampler.scenario.frequency_mhz,
        loads * trace.mean_duty_cycle(),
    )
    analytical_w = report.static_w + report.dynamic_w
    agreement_pct = 100.0 * abs(live_w - analytical_w) / analytical_w

    # churn replay: announce/withdraw stream from the real table
    updates = synthesize_churn(table, n_updates, seed=_SEED)
    churn_trie = UnibitTrie(table)
    stats = apply_updates(churn_trie, updates)
    write_rate = effective_write_rate(
        stats,
        updates_per_second,
        sampler.scenario.frequency_mhz,
        n_stages=max(table.max_length(), 1),
    )
    churn_sample = sampler.sample(trace, duty_cycle=rho, write_rate=write_rate)

    result = ExperimentResult(
        experiment_id="real_rib_churn",
        title=(
            f"Real-RIB churn replay: K={k} VS through 2 shards, "
            f"{n_updates} updates at {updates_per_second:.0f}/s"
        ),
        x_label="batch",
        x_values=np.arange(n_batches, dtype=float),
    )
    result.add_series("live_running_W", running)
    result.add_series("analytical_W", [analytical_w] * n_batches)
    result.add_series("agreement_pct", [agreement_pct] * n_batches)
    result.add_series("churn_total_W", [churn_sample.total_w] * n_batches)
    result.add_note(
        f"live {live_w:.3f} W vs analytical {analytical_w:.3f} W "
        f"at measured activity: {agreement_pct:.3f}% apart (bound: 1%)"
    )
    result.add_note(
        f"churn: {stats.announces} announces / {stats.withdraws} withdraws / "
        f"{stats.no_ops} no-ops, {stats.mean_writes_per_update():.2f} writes per "
        f"update, effective write rate {write_rate:.2e} "
        f"(paper assumes 1e-2); fixture sha256 {fixture_sha}"
    )
    return result


@register(
    "real_rib_v6",
    axes={"fixture_sha": (FIXTURE_SHA,)},
    tags=("real-rib", "extras"),
)
def run_real_rib_v6(
    fixture_sha: str = FIXTURE_SHA,
    k: int = 8,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """IPv6 outlook on real prefixes: measured merge at equal table size."""
    dataset = fixture_dataset()
    n = min(len(dataset.v4), len(dataset.v6))
    v4 = downsample(dataset.v4, n, seed=_SEED)
    v6 = downsample(dataset.v6, n, seed=_SEED)
    model = AnalyticalPowerModel(grade)

    rows = []
    alphas = []
    for label, table, width in (("IPv4", v4, 32), ("IPv6", v6, 128)):
        virtuals = virtual_tables_from_table(table, k, shared_fraction=0.5, seed=_SEED)
        merged = merge_tries([UnibitTrie(t, width=width) for t in virtuals])
        n_stages = max(merged.structure.depth(), 1)
        merged_map = map_trie_to_stages(
            merged.stats(), n_stages, nhi_vector_width=k
        )
        widest = pack_stage_memory(
            merged_map.widest_stage_bits()
        ).total_blocks18_equivalent
        fmax = achievable_fmax_mhz(grade, widest, _UTILIZATION)
        power = model.power_vm(merged_map, fmax)
        alphas.append(merged.global_alpha)
        rows.append(
            {
                "stages": n_stages,
                "nodes": merged.stats().total_nodes,
                "alpha": merged.global_alpha,
                "merged_memory_Mb": bits_to_mb(merged_map.total_bits),
                "fmax_MHz": fmax,
                "merged_total_W": power.total_w,
                "mW_per_Gbps": w_to_mw(power.total_w) / gbps(fmax),
            }
        )

    result = ExperimentResult(
        experiment_id="real_rib_v6",
        title=f"Real-RIB IPv6 outlook: {n} routes per family, merged K={k}",
        x_label="family",
        x_values=np.arange(2, dtype=float),
    )
    for key in rows[0]:
        result.add_series(key, [row[key] for row in rows])
    result.add_note("row 0: IPv4; row 1: IPv6 — both measured merges on real prefixes")
    ratio = rows[1]["merged_total_W"] / rows[0]["merged_total_W"]
    result.add_note(
        f"real v6 merged engine costs {ratio:.2f}x the v4 power at equal "
        f"route count (measured α: v4 {alphas[0]:.3f}, v6 {alphas[1]:.3f}); "
        f"fixture sha256 {fixture_sha}"
    )
    return result
