"""Fig. 4 — pointer and NHI memory vs number of virtual networks.

Paper caption: "Pointer and NHI memory requirements for merged
(α = 80 % and α = 20 %) and separate approaches" — two panels (pointer
memory left, NHI memory right, both in Mb) over K = 1…15 for the
3 725-prefix leaf-pushed reference table.

Expected shape (paper Section V-E): merged pointer memory shrinks as
α grows; merged NHI memory always exceeds separate (each merged leaf
carries a K-wide vector) and grows superlinearly at low α — which is
why "merging schemes are appropriate when the number of virtual
routers is small".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.estimator import base_trie_stats
from repro.core.resources import engine_stage_map, merged_stage_map
from repro.experiments.common import PAPER_ALPHAS, PAPER_KS, paper_table_config
from repro.iplookup.mapping import PAPER_PIPELINE_STAGES
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import bits_to_mb

__all__ = ["run"]


@register("fig4", tags=("paper", "figures"))
def run(
    ks: Sequence[int] = PAPER_KS, alphas: Sequence[float] = PAPER_ALPHAS
) -> ExperimentResult:
    """Regenerate both Fig. 4 panels as pointer/NHI series (Mb)."""
    ks = tuple(ks)
    stats = base_trie_stats(paper_table_config())
    base_map = engine_stage_map(stats, PAPER_PIPELINE_STAGES)

    result = ExperimentResult(
        experiment_id="fig4",
        title="Pointer and NHI memory vs K: merged vs separate (Mb)",
        x_label="K",
        x_values=np.asarray(ks, dtype=float),
    )
    for alpha in alphas:
        ptr = []
        nhi = []
        for k in ks:
            merged = merged_stage_map(stats, k, alpha, PAPER_PIPELINE_STAGES)
            ptr.append(bits_to_mb(merged.total_pointer_bits))
            nhi.append(bits_to_mb(merged.total_nhi_bits))
        label = f"merged a={int(alpha * 100)}%"
        result.add_series(f"pointer {label}", ptr)
        result.add_series(f"NHI {label}", nhi)
    sep_ptr = [k * bits_to_mb(base_map.total_pointer_bits) for k in ks]
    sep_nhi = [k * bits_to_mb(base_map.total_nhi_bits) for k in ks]
    result.add_series("pointer separate", sep_ptr)
    result.add_series("NHI separate", sep_nhi)
    result.add_note(
        "paper: pointer saving grows with alpha; NHI memory of merged exceeds "
        "separate and grows superlinearly in K (leaf vectors are K-wide)"
    )
    result.add_note(
        f"reference trie: {stats.total_nodes} leaf-pushed nodes "
        f"({stats.internal_nodes} pointer, {stats.leaf_nodes} NHI)"
    )
    return result
