"""Headline-claim checks (paper abstract and Section VI).

* **C1** — "power savings proportional to the number of virtual
  networks can be achieved compared with non-virtualized routers":
  P_NV − P_VS regressed against K must be close to a line of slope
  ≈ one device's static power.
* **C2** — "-1L [...] 30 % less power consumption [...] the two speed
  grades perform almost the same way" in mW/Gbps: per-K power ratio
  ≈ 0.7 and efficiency ratio ≈ 1.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.experiments.common import PAPER_KS, sweep_grid
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run"]


@register("claims", tags=("paper",))
def run(ks: Sequence[int] = PAPER_KS) -> ExperimentResult:
    """Evaluate claims C1 and C2 over the standard sweep."""
    ks = tuple(ks)
    k_arr = np.asarray(ks, dtype=float)
    grid_g2 = sweep_grid(SpeedGrade.G2, ks)
    grid_g1l = sweep_grid(SpeedGrade.G1L, ks)

    result = ExperimentResult(
        experiment_id="claims",
        title="Headline claim checks (C1: savings ∝ K; C2: -1L tradeoff)",
        x_label="K",
        x_values=k_arr,
    )

    # C1: virtualization savings vs K
    nv = np.array([r.experimental.total_w for r in grid_g2["NV"]])
    vs = np.array([r.experimental.total_w for r in grid_g2["VS"]])
    savings = nv - vs
    result.add_series("savings_NV_minus_VS_W", savings)
    slope, intercept = np.polyfit(k_arr, savings, 1)
    residual = savings - (slope * k_arr + intercept)
    r2 = 1.0 - float((residual**2).sum()) / float(
        ((savings - savings.mean()) ** 2).sum()
    )
    static = grade_data(SpeedGrade.G2).static_power_w
    result.add_note(
        f"C1: savings fit {slope:.3f} W/network (expect ~ device static "
        f"{static:.1f} W), R^2 = {r2:.4f} (proportional to K: R^2 ~ 1)"
    )

    # C2: grade power and efficiency ratios
    power_ratio = []
    eff_ratio = []
    for label in ("NV", "VS", "VM(a=80%)", "VM(a=20%)"):
        p2 = np.array([r.experimental.total_w for r in grid_g2[label]])
        p1 = np.array([r.experimental.total_w for r in grid_g1l[label]])
        e2 = np.array([r.experimental_mw_per_gbps for r in grid_g2[label]])
        e1 = np.array([r.experimental_mw_per_gbps for r in grid_g1l[label]])
        power_ratio.append(p1 / p2)
        eff_ratio.append(e1 / e2)
    result.add_series("power_ratio_1L_over_2", np.mean(power_ratio, axis=0))
    result.add_series("mw_per_gbps_ratio_1L_over_2", np.mean(eff_ratio, axis=0))
    mean_power_ratio = float(np.mean(power_ratio))
    mean_eff_ratio = float(np.mean(eff_ratio))
    result.add_note(
        f"C2: mean power ratio -1L/-2 = {mean_power_ratio:.3f} "
        f"(paper: ~0.70, i.e. 30% less power)"
    )
    result.add_note(
        f"C2: mean mW/Gbps ratio -1L/-2 = {mean_eff_ratio:.3f} "
        "(paper: the two grades perform almost the same)"
    )
    return result
