"""Robustness: does the ±3 % validation hold beyond one table?

The paper validates its model on one routing table.  A model that
only fits the table it was tuned on would be worthless, so this
experiment re-runs the Fig. 7 error check over *multiple independent
synthetic tables* (different seeds → different structure, sizes
around the reference) and reports the worst error per seed.  The
paper's bound must hold for every one.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import ResourceExhaustedError, TimingError
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.virt.schemes import Scheme

__all__ = ["run"]

#: (seed, prefix count) grid: structure and size both vary
_DEFAULT_CASES = ((101, 2000), (202, 3725), (303, 5000), (404, 8000))


@register("robustness", tags=("extras",))
def run(
    cases: Sequence[tuple[int, int]] = _DEFAULT_CASES,
    ks: Sequence[int] = (2, 8, 15),
) -> ExperimentResult:
    """Worst model error per independent table, per scheme."""
    cases = tuple(cases)
    ks = tuple(ks)
    estimator = ScenarioEstimator()
    result = ExperimentResult(
        experiment_id="robustness",
        title="Model error bound across independent tables (max |%| over K)",
        x_label="case",
        x_values=np.arange(len(cases), dtype=float),
    )
    variants = (
        ("NV", Scheme.NV, None),
        ("VS", Scheme.VS, None),
        ("VM(a=80%)", Scheme.VM, 0.8),
        ("VM(a=20%)", Scheme.VM, 0.2),
    )
    per_variant: dict[str, list[float]] = {label: [] for label, _, _ in variants}
    skipped = 0
    for seed, size in cases:
        table = SyntheticTableConfig(n_prefixes=size, seed=seed)
        for label, scheme, alpha in variants:
            worst = 0.0
            for k in ks:
                try:
                    r = estimator.evaluate(
                        ScenarioConfig(scheme=scheme, k=k, alpha=alpha, table=table)
                    )
                except (ResourceExhaustedError, TimingError):
                    # configurations that do not implement cannot be
                    # validated; the scalability experiment maps them
                    skipped += 1
                    continue
                worst = max(worst, abs(r.percentage_error))
            per_variant[label].append(worst)
    for label, values in per_variant.items():
        result.add_series(f"max_abs_err {label}", values)
    overall = max(max(v) for v in per_variant.values())
    result.add_note(
        f"worst error over {len(cases)} tables x {len(ks)} K values x 4 schemes: "
        f"{overall:.2f}% (paper bound: 3%)"
    )
    if skipped:
        result.add_note(
            f"{skipped} configurations skipped: they do not fit the device "
            "(see the scalability experiment)"
        )
    for i, (seed, size) in enumerate(cases):
        result.add_note(f"case {i}: seed={seed}, {size} prefixes")
    return result
