"""Paper experiments: one module per table/figure plus claim checks.

Importing this package registers every experiment with
:mod:`repro.reporting.registry` — the paper artifacts here, the
``agility`` study and the A1–A11 design-space ablations from
:mod:`repro.analysis.sweeps`.  The experiment engine
(:mod:`repro.experiments.engine`) expands each registered spec's axes
into concrete runs; the ``repro-experiments`` CLI caches and
parallelizes them, and EXPERIMENTS.md records paper-vs-measured.
"""

from repro.analysis import agility, sweeps  # noqa: F401  (registration side effects)
from repro.experiments import (  # noqa: F401  (imported for registration)
    braiding_gain,
    claims,
    device_choice,
    fig2_bram_power,
    fig3_logic_power,
    fig4_memory,
    fig5_total_power,
    fig6_virtualized_power,
    fig7_model_error,
    fig8_power_efficiency,
    governor,
    ipv6_outlook,
    latency,
    real_rib,
    robustness,
    scalability,
    table2_device,
    table3_bram_model,
    trie_stats,
    voltage,
)

__all__ = [
    "agility",
    "sweeps",
    "braiding_gain",
    "claims",
    "device_choice",
    "fig2_bram_power",
    "fig3_logic_power",
    "fig4_memory",
    "fig5_total_power",
    "fig6_virtualized_power",
    "fig7_model_error",
    "fig8_power_efficiency",
    "governor",
    "ipv6_outlook",
    "latency",
    "real_rib",
    "robustness",
    "scalability",
    "table2_device",
    "table3_bram_model",
    "trie_stats",
    "voltage",
]
