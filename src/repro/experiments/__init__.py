"""Paper experiments: one module per table/figure plus claim checks.

Importing this package registers every experiment with
:mod:`repro.reporting.registry`.  Each experiment's ``run`` function
regenerates the corresponding paper artifact's rows/series; the
benchmark harness under ``benchmarks/`` prints them, and
EXPERIMENTS.md records paper-vs-measured.
"""

from repro.analysis import agility  # noqa: F401  (registers the agility experiment)
from repro.experiments import (  # noqa: F401  (imported for registration)
    braiding_gain,
    claims,
    device_choice,
    fig2_bram_power,
    fig3_logic_power,
    fig4_memory,
    fig5_total_power,
    fig6_virtualized_power,
    fig7_model_error,
    fig8_power_efficiency,
    ipv6_outlook,
    latency,
    robustness,
    scalability,
    table2_device,
    table3_bram_model,
    trie_stats,
    voltage,
)

__all__ = [
    "agility",
    "braiding_gain",
    "claims",
    "device_choice",
    "fig2_bram_power",
    "fig3_logic_power",
    "fig4_memory",
    "fig5_total_power",
    "fig6_virtualized_power",
    "fig7_model_error",
    "fig8_power_efficiency",
    "ipv6_outlook",
    "latency",
    "robustness",
    "scalability",
    "table2_device",
    "table3_bram_model",
    "trie_stats",
    "voltage",
]
