"""Fig. 8 — power dissipated per unit throughput (mW/Gbps).

Paper caption: "Power dissipated per unit throughput for speed grades
-2 (left) and -1L (right)".  Throughput uses minimum 40 B packets and
one lookup per cycle at the achieved clock; lower is better.

Expected shape (paper Section VI-B): virtualized-separate is the best
(aggregate capacity at one device's power), the conventional router is
second, merged is worst — its frequency (hence throughput) collapses
as resource consumption grows — and α = 20 % is worse than α = 80 %.
Both speed grades land at nearly the same mW/Gbps: -1L's ~30 % power
saving costs ~30 % throughput.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.experiments.common import PAPER_KS, sweep_grid
from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run"]


@register(
    "fig8",
    axes={"grade": (SpeedGrade.G2, SpeedGrade.G1L)},
    tags=("paper", "figures", "graded"),
)
def run(
    grade: SpeedGrade = SpeedGrade.G2, ks: Sequence[int] = PAPER_KS
) -> ExperimentResult:
    """Regenerate one Fig. 8 panel (experimental mW/Gbps per scheme)."""
    ks = tuple(ks)
    grid = sweep_grid(grade, ks)
    result = ExperimentResult(
        experiment_id="fig8",
        title=f"Power per unit throughput, grade {grade} (mW/Gbps)",
        x_label="K",
        x_values=np.asarray(ks, dtype=float),
    )
    for label, results in grid.items():
        result.add_series(label, [r.experimental_mw_per_gbps for r in results])
    at_max = {label: series.values[-1] for label, series in zip(result.labels(), result.series)}
    ordering = sorted(at_max, key=at_max.get)
    result.add_note(
        f"ordering at K={ks[-1]} (best first): "
        + " < ".join(f"{label} ({at_max[label]:.1f})" for label in ordering)
    )
    result.add_note("paper: VS best, NV second, merged worst (worse at low alpha)")
    return result
