"""Device exploration: how the platform choice moves the walls.

The paper motivates the XC6VLX760 by its "onboard resources, mainly
Block RAM, distributed RAM and I/O pins" (Section V).  This experiment
re-runs the key feasibility and power questions across the Virtex-6
catalog: the separate scheme's pin-limited max K, whether a K = 8
deployment fits, and the power it draws — showing why smaller parts
gate consolidation earlier.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import ReproError
from repro.fpga.catalog import DEVICE_CATALOG
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.virt.schemes import Scheme

__all__ = ["run"]


@register("devices", tags=("extras",))
def run(k: int = 8, table: SyntheticTableConfig | None = None) -> ExperimentResult:
    """Feasibility and power of a K-network VS deployment per device."""
    table = table or SyntheticTableConfig(n_prefixes=1000, seed=99)
    estimator = ScenarioEstimator()
    names = sorted(DEVICE_CATALOG)
    result = ExperimentResult(
        experiment_id="devices",
        title=f"Device exploration: VS K={k} across the Virtex-6 catalog",
        x_label="device",
        x_values=np.arange(len(names), dtype=float),
    )
    max_ks = []
    fits = []
    powers = []
    for name in names:
        device = DEVICE_CATALOG[name]
        # pin-limited max K
        last_ok = 0
        for candidate in range(1, 33):
            try:
                estimator.evaluate(
                    ScenarioConfig(
                        scheme=Scheme.VS, k=candidate, device=device, table=table
                    )
                )
                last_ok = candidate
            except ReproError:
                break
        max_ks.append(last_ok)
        try:
            r = estimator.evaluate(
                ScenarioConfig(scheme=Scheme.VS, k=k, device=device, table=table)
            )
            fits.append(1.0)
            powers.append(r.experimental.total_w)
        except ReproError:
            fits.append(0.0)
            powers.append(float("nan"))
    result.add_series("max_K", max_ks)
    result.add_series(f"fits_K{k}", fits)
    result.add_series(f"power_K{k}_W", powers)
    for i, name in enumerate(names):
        result.add_note(f"device {i}: {name} ({DEVICE_CATALOG[name].max_io_pins} pins)")
    result.add_note("the paper's LX760 offers the largest pin budget, hence K=15")
    return result
