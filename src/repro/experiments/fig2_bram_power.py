"""Fig. 2 — BRAM power variation with operating frequency.

Paper caption: "BRAM power variation with operating frequency" for a
single block, four series: 18 Kb and 36 Kb blocks at speed grades -2
and -1L, swept 100…500 MHz at the paper's operating point (1 % write
rate, 18-bit reads).  Power is in mW on the paper's axis; series here
are reported in mW per block to match.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fpga.bram import BramKind
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.xpe import XPowerEstimator
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import uw_to_mw

__all__ = ["run"]


@register("fig2", tags=("paper", "figures"))
def run(
    frequencies_mhz: Sequence[float] = (100.0, 200.0, 300.0, 400.0, 500.0),
) -> ExperimentResult:
    """Regenerate the four Fig. 2 series (single-block power, mW)."""
    xpe = XPowerEstimator(frequencies_mhz)
    result = ExperimentResult(
        experiment_id="fig2",
        title="BRAM power variation with operating frequency (one block, mW)",
        x_label="frequency_MHz",
        x_values=np.asarray(frequencies_mhz, dtype=float),
    )
    for kind in (BramKind.B18, BramKind.B36):
        for grade in (SpeedGrade.G2, SpeedGrade.G1L):
            sweep = xpe.bram_sweep(kind, grade)
            result.add_series(f"{kind.value}Kb ({grade})", uw_to_mw(sweep.power_uw))
    result.add_note(
        "paper: power increases monotonically with both size and frequency; "
        "series are linear in f at the Table III slopes"
    )
    return result
