"""The experiment engine: axis expansion, caching, parallel execution.

The engine turns declarative :class:`~repro.reporting.registry.ExperimentSpec`
registrations into concrete runs:

1. **expand** — the cartesian product of a spec's axes becomes one
   :class:`RunRequest` per combination (a spec with no axes expands to
   a single run).  Each request carries a human-readable *variant*
   label (``fig8`` × grade ``-1L`` → ``G1L``) and a content hash used
   as its cache key.
2. **execute** — requests are served from the content-addressed
   :class:`~repro.experiments.cache.ResultCache` when possible;
   misses run the spec's runner, inline for ``jobs=1`` or fanned out
   over a :class:`concurrent.futures.ProcessPoolExecutor` otherwise.
3. **record** — every request yields a :class:`RunRecord` (result,
   cache hit/miss, wall time, captured traceback on failure) in
   request order, from which :mod:`repro.experiments.provenance`
   builds the invocation manifest.

Observability
-------------
While the process-wide observability layer is enabled
(:func:`repro.obs.enable`), :meth:`ExperimentEngine.execute` wraps
each batch in an ``experiment.execute`` span with per-run
``experiment.run`` child spans, counts cache outcomes
(``repro_experiments_cache_total{outcome}``) and run statuses
(``repro_experiments_runs_total{status}``), and observes per-run wall
time in seconds into ``repro_experiments_run_seconds{mode}`` (mode is
``inline``, ``parallel`` or ``cached``).  Pool workers are separate
processes and do not publish; fan-out timing is recorded from the
parent side.
"""

from __future__ import annotations

import itertools
import time
import traceback
from collections.abc import Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ExperimentError
from repro.experiments.cache import ResultCache, spec_hash
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracing import default_tracer
from repro.reporting.registry import ExperimentSpec, get_experiment, get_spec
from repro.reporting.result import ExperimentResult

__all__ = [
    "RunRequest",
    "RunRecord",
    "axis_token",
    "expand_spec",
    "ExperimentEngine",
]


def axis_token(value: object) -> str:
    """Filesystem-safe token for one axis value (``SpeedGrade.G2`` → ``G2``)."""
    if isinstance(value, Enum):
        text = value.name
    elif isinstance(value, float):
        text = f"{value:g}"
    else:
        text = str(value)
    return "".join(c if c.isalnum() or c in "-_." else "-" for c in text)


@dataclass(frozen=True)
class RunRequest:
    """One concrete run of one experiment (spec × axis point)."""

    experiment_id: str
    params: tuple[tuple[str, object], ...]
    variant: str
    spec_hash: str

    @property
    def name(self) -> str:
        """Export/file base name: id plus variant suffix if swept."""
        return f"{self.experiment_id}_{self.variant}" if self.variant else self.experiment_id

    def kwargs(self) -> dict[str, object]:
        """Axis parameters as runner keyword arguments."""
        return dict(self.params)


@dataclass
class RunRecord:
    """Outcome of one :class:`RunRequest`."""

    request: RunRequest
    result: ExperimentResult | None = None
    cache_hit: bool = False
    wall_time_s: float = 0.0
    error: str | None = None
    skipped: bool = False

    @property
    def experiment_id(self) -> str:
        return self.request.experiment_id

    @property
    def variant(self) -> str:
        return self.request.variant

    @property
    def params(self) -> dict[str, object]:
        return self.request.kwargs()

    @property
    def spec_hash(self) -> str:
        return self.request.spec_hash

    @property
    def status(self) -> str:
        if self.skipped:
            return "skipped"
        return "error" if self.error is not None else "ok"


def expand_spec(spec: ExperimentSpec) -> list[RunRequest]:
    """Expand a spec's axes into concrete run requests (in axis order)."""
    if not spec.axes:
        return [
            RunRequest(
                experiment_id=spec.experiment_id,
                params=(),
                variant="",
                spec_hash=spec_hash(spec.experiment_id, {}),
            )
        ]
    names = [axis.name for axis in spec.axes]
    requests = []
    for combo in itertools.product(*(axis.values for axis in spec.axes)):
        params = tuple(zip(names, combo))
        variant = "_".join(axis_token(value) for value in combo)
        requests.append(
            RunRequest(
                experiment_id=spec.experiment_id,
                params=params,
                variant=variant,
                spec_hash=spec_hash(spec.experiment_id, dict(params)),
            )
        )
    return requests


#: histogram bounds for experiment wall time, seconds (runs span
#: milliseconds for cache hits to minutes for cold parallel sweeps)
RUN_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)


def _record_run(registry: MetricsRegistry, record: RunRecord, mode: str) -> None:
    """Publish one finished run's status and wall time (registry enabled)."""
    registry.counter(
        "repro_experiments_runs_total",
        "Experiment runs finished, by outcome",
        labels=("status",),
    ).labels(record.status).inc()
    registry.histogram(
        "repro_experiments_run_seconds",
        "Wall time of one experiment run, by execution mode",
        labels=("mode",),
        buckets=RUN_SECONDS_BUCKETS,
    ).labels(mode).observe(record.wall_time_s)


def _execute_request(experiment_id: str, params: tuple[tuple[str, object], ...]):
    """Worker entry point: run one request, capturing any traceback.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; child
    processes re-import the registry, which re-runs registrations.
    """
    try:
        runner = get_experiment(experiment_id)
        return runner(**dict(params)), None
    except Exception:
        return None, traceback.format_exc()


@dataclass
class ExperimentEngine:
    """Cached, parallel executor over expanded experiment specs.

    Attributes
    ----------
    cache:
        Result store consulted before every run; ``None`` disables
        memoization entirely.
    jobs:
        Worker-process count; 1 executes inline in this process.
    """

    cache: ResultCache | None = field(default_factory=ResultCache)
    jobs: int = 1

    def expand(self, specs: Iterable[ExperimentSpec]) -> list[RunRequest]:
        """All concrete runs for ``specs``, in spec order."""
        requests: list[RunRequest] = []
        for spec in specs:
            requests.extend(expand_spec(spec))
        return requests

    def run_ids(
        self, experiment_ids: Sequence[str], *, fail_fast: bool = False
    ) -> list[RunRecord]:
        """Run experiments by registry id (unknown ids raise)."""
        specs = [get_spec(eid) for eid in experiment_ids]
        return self.run_specs(specs, fail_fast=fail_fast)

    def run_specs(
        self, specs: Iterable[ExperimentSpec], *, fail_fast: bool = False
    ) -> list[RunRecord]:
        """Expand and execute ``specs``, returning records in order."""
        return self.execute(self.expand(specs), fail_fast=fail_fast)

    # -- execution -----------------------------------------------------------

    def execute(
        self, requests: Sequence[RunRequest], *, fail_fast: bool = False
    ) -> list[RunRecord]:
        """Execute ``requests``; the cache absorbs repeated hashes."""
        registry = default_registry()
        metrics_on = registry.enabled
        mode = "parallel" if self.jobs > 1 else "inline"
        with default_tracer().span(
            "experiment.execute", n_requests=len(requests), jobs=self.jobs
        ) as span:
            records = [RunRecord(request=request) for request in requests]
            pending: list[int] = []
            for i, request in enumerate(requests):
                started = time.perf_counter()
                cached = self.cache.get(request.spec_hash) if self.cache else None
                if cached is not None:
                    records[i].result = cached
                    records[i].cache_hit = True
                    records[i].wall_time_s = time.perf_counter() - started
                else:
                    pending.append(i)
            if metrics_on:
                cache_counter = registry.counter(
                    "repro_experiments_cache_total",
                    "Cache lookups by the engine, by outcome",
                    labels=("outcome",),
                )
                hits = len(requests) - len(pending)
                if hits:
                    cache_counter.labels("hit").inc(hits)
                if pending:
                    cache_counter.labels("miss").inc(len(pending))
                for record in records:
                    if record.cache_hit:
                        _record_run(registry, record, "cached")

            if self.jobs > 1 and len(pending) > 1:
                self._execute_parallel(records, pending, fail_fast=fail_fast)
            else:
                self._execute_inline(records, pending, fail_fast=fail_fast)

            if metrics_on:
                for i in pending:
                    _record_run(registry, records[i], mode)
            span.set("cache_hits", len(requests) - len(pending))
            span.set("errors", sum(1 for r in records if r.status == "error"))

            for record in records:
                if record.status == "ok" and not record.cache_hit and self.cache:
                    self.cache.put(record.spec_hash, record.result)
        return records

    def _execute_inline(
        self, records: list[RunRecord], pending: list[int], *, fail_fast: bool
    ) -> None:
        tracer = default_tracer()
        failed = False
        for i in pending:
            record = records[i]
            if failed:
                record.skipped = True
                continue
            with tracer.span(
                "experiment.run",
                experiment_id=record.request.experiment_id,
                variant=record.request.variant,
            ) as span:
                started = time.perf_counter()
                record.result, record.error = _execute_request(
                    record.request.experiment_id, record.request.params
                )
                record.wall_time_s = time.perf_counter() - started
                span.set("status", record.status)
            if record.error is not None and fail_fast:
                failed = True

    def _execute_parallel(
        self, records: list[RunRecord], pending: list[int], *, fail_fast: bool
    ) -> None:
        started_at = {i: 0.0 for i in pending}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {}
            for i in pending:
                request = records[i].request
                started_at[i] = time.perf_counter()
                futures[pool.submit(_execute_request, request.experiment_id, request.params)] = i
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                abort = False
                for future in done:
                    i = futures[future]
                    record = records[i]
                    record.wall_time_s = time.perf_counter() - started_at[i]
                    try:
                        record.result, record.error = future.result()
                    except Exception:  # worker died (e.g. pool broke)
                        record.error = traceback.format_exc()
                    if record.error is not None and fail_fast:
                        abort = True
                if abort:
                    for future in outstanding:
                        if future.cancel():
                            records[futures[future]].skipped = True
                    for future in outstanding:  # already-running stragglers
                        i = futures[future]
                        if not records[i].skipped:
                            try:
                                records[i].result, records[i].error = future.result()
                            except Exception:
                                records[i].error = traceback.format_exc()
                            records[i].wall_time_s = time.perf_counter() - started_at[i]
                    return


def run_experiment(experiment_id: str) -> list[ExperimentResult]:
    """Run one experiment inline, one result per expanded axis point.

    Uncached, sequential, exception-propagating — the drop-in
    equivalent of the pre-engine runner helper, retained for report
    generation and tests that want direct access to results.
    """
    spec = get_spec(experiment_id)
    results = []
    for request in expand_spec(spec):
        result = spec.runner(**request.kwargs())
        if not isinstance(result, ExperimentResult):
            raise ExperimentError(
                f"experiment {experiment_id!r} returned {type(result).__name__}, "
                "expected ExperimentResult"
            )
        results.append(result)
    return results
