"""Fig. 5 — total power: virtualized vs non-virtualized schemes.

Paper caption: "Comparison of total power consumption in virtualized
and non-virtualized schemes for speed grades -2 (left) and -1L
(right)"; series NV, VS, VM(α=80 %), VM(α=20 %) over K = 1…15.

Expected shape: NV grows linearly with K (one device's static power
per network); the virtualized schemes stay near a single device's
power — "power savings proportional to the number of virtual
networks" (abstract).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.experiments.common import PAPER_KS, sweep_grid
from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run"]


@register(
    "fig5",
    axes={"grade": (SpeedGrade.G2, SpeedGrade.G1L)},
    tags=("paper", "figures", "graded"),
)
def run(
    grade: SpeedGrade = SpeedGrade.G2, ks: Sequence[int] = PAPER_KS
) -> ExperimentResult:
    """Regenerate one Fig. 5 panel (experimental total power, W)."""
    ks = tuple(ks)
    grid = sweep_grid(grade, ks)
    result = ExperimentResult(
        experiment_id="fig5",
        title=f"Total power, all schemes, grade {grade} (W)",
        x_label="K",
        x_values=np.asarray(ks, dtype=float),
    )
    for label, results in grid.items():
        result.add_series(label, [r.experimental.total_w for r in results])
    nv = result.get("NV")
    vs = result.get("VS")
    result.add_note(
        f"NV grows ~linearly: {nv[0]:.2f} W at K=1 -> {nv[-1]:.2f} W at K={ks[-1]}; "
        f"VS stays near one device: {vs[-1]:.2f} W"
    )
    result.add_note(
        f"virtualization saving at K={ks[-1]}: {nv[-1] - vs[-1]:.2f} W "
        f"({(nv[-1] - vs[-1]) / nv[-1] * 100:.0f}% of NV)"
    )
    return result
