"""Command-line experiment runner.

``repro-experiments`` (installed as a console script) runs registered
experiments and prints their tables; ``--csv DIR`` also exports CSVs.

Examples
--------
Run everything::

    repro-experiments

Run the Fig. 8 panels for both grades and export CSVs::

    repro-experiments fig8 --csv out/
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import all_experiments, get_experiment
from repro.reporting.result import ExperimentResult

__all__ = ["main", "run_experiment"]

#: experiments parameterized by speed grade (two panels in the paper)
_GRADED = {"fig5", "fig6", "fig7", "fig8"}


def run_experiment(experiment_id: str) -> list[ExperimentResult]:
    """Run one experiment; graded figures produce one result per panel."""
    runner = get_experiment(experiment_id)
    if experiment_id in _GRADED:
        return [runner(grade) for grade in (SpeedGrade.G2, SpeedGrade.G1L)]
    return [runner()]


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all registered)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument("--csv", metavar="DIR", help="also export CSVs into DIR")
    parser.add_argument(
        "--chart", action="store_true", help="draw each result as an ASCII chart too"
    )
    parser.add_argument("--svg", metavar="DIR", help="also export SVG figures into DIR")
    args = parser.parse_args(argv)

    registry = all_experiments()
    if args.list:
        for experiment_id in sorted(registry):
            print(experiment_id)
        return 0

    ids = args.experiments or sorted(registry)
    exit_code = 0
    for experiment_id in ids:
        try:
            results = run_experiment(experiment_id)
        except Exception as exc:  # surface which experiment failed
            print(f"!! {experiment_id} failed: {exc}", file=sys.stderr)
            exit_code = 1
            continue
        for i, result in enumerate(results):
            print(result.render())
            if args.chart:
                from repro.reporting.ascii_chart import render_chart

                print(render_chart(result))
            suffix = f"_{i}" if len(results) > 1 else ""
            if args.csv:
                os.makedirs(args.csv, exist_ok=True)
                result.write_csv(os.path.join(args.csv, f"{experiment_id}{suffix}.csv"))
            if args.svg:
                from repro.reporting.svg_chart import write_svg

                os.makedirs(args.svg, exist_ok=True)
                write_svg(result, os.path.join(args.svg, f"{experiment_id}{suffix}.svg"))
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
