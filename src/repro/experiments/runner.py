"""Command-line experiment runner.

``repro-experiments`` (installed as a console script) runs registered
experiments through the experiment engine: specs expand into concrete
runs, results are memoized in a content-addressed cache under
``out/.cache/``, independent runs fan out over worker processes, and
every invocation writes a JSON run manifest for provenance.

Examples
--------
Regenerate everything, in parallel, reusing cached results::

    repro-experiments --jobs 4

Run the Fig. 8 panels for both grades and export CSVs (named by the
expanded grade axis: ``fig8_G2.csv``, ``fig8_G1L.csv``)::

    repro-experiments fig8 --csv out/

Only the paper figures, bypassing the cache, stopping on the first
failure::

    repro-experiments --tag figures --no-cache --fail-fast
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.errors import ExperimentError
from repro.experiments import engine as engine_mod
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache, result_to_dict
from repro.experiments.engine import ExperimentEngine, RunRecord
from repro.experiments.provenance import build_manifest, write_manifest
from repro.reporting.registry import ExperimentSpec, all_specs, get_spec

__all__ = ["main", "run_experiment", "select_specs"]

#: re-exported engine helper (kept here for backwards compatibility)
run_experiment = engine_mod.run_experiment


def select_specs(
    experiment_ids: list[str], tags: list[str]
) -> list[ExperimentSpec]:
    """Resolve the CLI's positional ids / ``--tag`` filters to specs.

    Explicit ids win over tag filters; with neither, every registered
    spec is selected.  Tag filtering is any-of across repeated flags.
    """
    if experiment_ids:
        return [get_spec(eid) for eid in experiment_ids]
    registry = all_specs()
    specs = [registry[eid] for eid in sorted(registry)]
    if tags:
        wanted = set(tags)
        specs = [spec for spec in specs if spec.tags & wanted]
        if not specs:
            known = sorted({tag for spec in registry.values() for tag in spec.tags})
            raise ExperimentError(
                f"no experiments match tags {sorted(wanted)}; known tags: {known}"
            )
    return specs


def _export(record: RunRecord, args: argparse.Namespace) -> None:
    """Write the per-run CSV/SVG/JSON exports requested on the CLI."""
    result = record.result
    name = record.request.name
    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
        result.write_csv(os.path.join(args.csv, f"{name}.csv"))
    if args.svg:
        from repro.reporting.svg_chart import write_svg

        os.makedirs(args.svg, exist_ok=True)
        write_svg(result, os.path.join(args.svg, f"{name}.svg"))
    if args.json:
        import json

        os.makedirs(args.json, exist_ok=True)
        payload = {
            "spec_hash": record.spec_hash,
            "params": {k: str(v) for k, v in record.params.items()},
            "result": result_to_dict(result),
        }
        with open(os.path.join(args.json, f"{name}.json"), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures (cached, parallel).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all registered)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG",
        help="run only experiments with TAG (repeatable, any-of)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent runs out over N worker processes",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache entirely"
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"content-addressed cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        help="run-manifest path (default: <cache-dir>/manifest.json)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first failing experiment",
    )
    parser.add_argument("--csv", metavar="DIR", help="also export CSVs into DIR")
    parser.add_argument(
        "--chart", action="store_true", help="draw each result as an ASCII chart too"
    )
    parser.add_argument("--svg", metavar="DIR", help="also export SVG figures into DIR")
    parser.add_argument(
        "--json", metavar="DIR", help="also export JSON results into DIR"
    )
    args = parser.parse_args(argv)

    if args.list:
        registry = all_specs()
        for experiment_id in sorted(registry):
            spec = registry[experiment_id]
            tags = ",".join(sorted(spec.tags))
            print(f"{experiment_id:<24} [{tags}] {spec.description}")
        return 0

    if args.jobs < 1:
        print("!! --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        specs = select_specs(args.experiments, args.tag)
    except ExperimentError as exc:
        print(f"!! {exc}", file=sys.stderr)
        return 1

    cache = ResultCache(args.cache_dir, enabled=not args.no_cache)
    runner_engine = ExperimentEngine(cache=cache, jobs=args.jobs)
    started = time.perf_counter()
    records = runner_engine.run_specs(specs, fail_fast=args.fail_fast)
    wall_time_s = time.perf_counter() - started

    exit_code = 0
    for record in records:
        if record.status == "skipped":
            print(f"-- {record.request.name} skipped (--fail-fast)", file=sys.stderr)
            continue
        if record.status == "error":
            print(
                f"!! {record.request.name} failed:\n{record.error}", file=sys.stderr
            )
            exit_code = 1
            continue
        print(record.result.render())
        if args.chart:
            from repro.reporting.ascii_chart import render_chart

            print(render_chart(record.result))
        _export(record, args)

    manifest = build_manifest(
        records,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_enabled=cache.enabled,
        wall_time_s=wall_time_s,
    )
    manifest_path = args.manifest or os.path.join(args.cache_dir, "manifest.json")
    write_manifest(manifest_path, manifest)

    totals = manifest["totals"]
    print(
        f"{totals['runs']} runs: {totals['cache_hits']} cached, "
        f"{totals['executed']} executed, {totals['failed']} failed, "
        f"{totals['skipped']} skipped in {wall_time_s:.2f}s "
        f"(manifest: {manifest_path})",
        file=sys.stderr,
    )
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
