"""IPv6 outlook — what the paper's architecture costs at 128 bits.

The paper's motivation is Internet growth; the growth that actually
arrived is IPv6.  The uni-bit architecture generalizes directly — more
trie levels, a deeper pipeline — and the models quantify the cost: a
/64-deep pipeline has 64 stages of logic instead of 28, and sparse
128-bit chains inflate the per-prefix node count.  This experiment
compares equal-size IPv4 and IPv6 edge tables on one engine and on a
K = 8 merged engine.
"""

from __future__ import annotations

import numpy as np

from repro.core.power import AnalyticalPowerModel
from repro.core.resources import merged_stage_map
from repro.fpga.bram import pack_stage_memory
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.timing import achievable_fmax_mhz
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import map_trie_to_stages
from repro.iplookup.prefix6 import Synthetic6Config, generate_table6
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import UnibitTrie
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import bits_to_mb, gbps, w_to_mw

__all__ = ["run"]


@register("ipv6", tags=("extras",))
def run(
    n_prefixes: int = 2000,
    k: int = 8,
    alpha: float = 0.8,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """Side-by-side IPv4 vs IPv6 engine cost at equal table size."""
    v4 = leaf_push(
        UnibitTrie(generate_table(SyntheticTableConfig(n_prefixes=n_prefixes, seed=9)))
    )
    v6 = leaf_push(
        UnibitTrie(
            generate_table6(Synthetic6Config(n_prefixes=n_prefixes, seed=9)),
            width=128,
        )
    )
    model = AnalyticalPowerModel(grade)

    rows = []
    for label, trie in (("IPv4", v4), ("IPv6", v6)):
        n_stages = trie.depth()
        stats = trie.stats()
        single = map_trie_to_stages(stats, n_stages)
        merged = merged_stage_map(stats, k, alpha, n_stages)
        widest = pack_stage_memory(merged.widest_stage_bits()).total_blocks18_equivalent
        fmax = achievable_fmax_mhz(grade, widest, 0.3)
        power = model.power_vm(merged, fmax)
        rows.append(
            {
                "stages": n_stages,
                "nodes": stats.total_nodes,
                "single_memory_Mb": bits_to_mb(single.total_bits),
                "merged_memory_Mb": bits_to_mb(merged.total_bits),
                "fmax_MHz": fmax,
                "merged_total_W": power.total_w,
                "mW_per_Gbps": w_to_mw(power.total_w) / gbps(fmax),
            }
        )

    result = ExperimentResult(
        experiment_id="ipv6",
        title=f"IPv6 outlook: equal-size tables, merged K={k}, grade {grade}",
        x_label="family",
        x_values=np.arange(2, dtype=float),
    )
    for key in rows[0]:
        result.add_series(key, [row[key] for row in rows])
    result.add_note("row 0: IPv4 (28-ish stages); row 1: IPv6 (/64 pipeline)")
    ratio = rows[1]["merged_total_W"] / rows[0]["merged_total_W"]
    eff_ratio = rows[1]["mW_per_Gbps"] / rows[0]["mW_per_Gbps"]
    result.add_note(
        f"IPv6 merged engine costs {ratio:.2f}x the power and {eff_ratio:.2f}x "
        "the mW/Gbps of IPv4 at equal prefix count"
    )
    return result
