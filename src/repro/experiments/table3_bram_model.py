"""Table III — the BRAM power model, refit from characterization data.

The paper derives Table III ("Setup → Power (µW)": ⌈M/cap⌉ × c × f) by
sweeping a single BRAM block in XPE and fitting the linear frequency
dependence.  This experiment repeats that procedure against our
XPE-like estimator and compares the fitted coefficients with the
published ones — they must agree to numerical precision, since the
estimator is calibrated to the paper's operating point.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.bram import BramKind
from repro.fpga.speedgrade import SpeedGrade
from repro.fpga.xpe import XPowerEstimator
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run", "PAPER_TABLE3"]

#: the paper's Table III coefficients, µW per MHz per block
PAPER_TABLE3 = {
    (BramKind.B18, SpeedGrade.G2): 13.65,
    (BramKind.B36, SpeedGrade.G2): 24.60,
    (BramKind.B18, SpeedGrade.G1L): 11.00,
    (BramKind.B36, SpeedGrade.G1L): 19.70,
}


@register("table3", tags=("paper", "tables"))
def run() -> ExperimentResult:
    """Refit the Table III coefficients from XPE sweeps."""
    xpe = XPowerEstimator()
    fitted = xpe.table3()
    setups = list(PAPER_TABLE3)
    result = ExperimentResult(
        experiment_id="table3",
        title="BRAM power model coefficients (Table III, uW/MHz per block)",
        x_label="setup",
        x_values=np.arange(len(setups), dtype=float),
    )
    result.add_series("paper", [PAPER_TABLE3[s] for s in setups])
    result.add_series("fitted", [fitted[s] for s in setups])
    for i, (kind, grade) in enumerate(setups):
        paper = PAPER_TABLE3[(kind, grade)]
        fit = fitted[(kind, grade)]
        result.add_note(
            f"{kind.value}Kb ({grade}): paper={paper:.2f} fitted={fit:.4f} "
            f"(delta {abs(fit - paper):.2e})"
        )
    return result
