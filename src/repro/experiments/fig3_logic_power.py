"""Fig. 3 — per-stage logic and signal power vs operating frequency.

Paper caption: "Per stage logic and signal power consumption", grades
-2 and -1L.  The published summary lines are 5.180·f µW (-2) and
3.937·f µW (-1L); the figure also separates the logic and signal
(routing) components, which we report as well.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fpga.logic import signal_power_fraction, stage_logic_power_uw
from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import uw_to_mw

__all__ = ["run"]


@register("fig3", tags=("paper", "figures"))
def run(
    frequencies_mhz: Sequence[float] = (100.0, 200.0, 300.0, 400.0, 500.0),
) -> ExperimentResult:
    """Regenerate the Fig. 3 series (per-stage power, mW)."""
    freqs = np.asarray(frequencies_mhz, dtype=float)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Per-stage logic and signal power vs frequency (mW)",
        x_label="frequency_MHz",
        x_values=freqs,
    )
    signal_share = signal_power_fraction()
    for grade in (SpeedGrade.G2, SpeedGrade.G1L):
        total_uw = np.array([stage_logic_power_uw(f, grade) for f in freqs])
        result.add_series(f"logic ({grade})", uw_to_mw(total_uw * (1 - signal_share)))
        result.add_series(f"signal ({grade})", uw_to_mw(total_uw * signal_share))
        result.add_series(f"total ({grade})", uw_to_mw(total_uw))
    result.add_note("paper lines: total = 5.180 uW/MHz (-2), 3.937 uW/MHz (-1L)")
    return result
