"""Reference routing-table statistics (paper Section V-E).

The paper's largest potaroo.net edge table: 3 725 prefixes, 9 726 trie
nodes without leaf pushing, 16 127 with.  Our synthetic stand-in is
calibrated against those counts (see DESIGN.md §2); this experiment
reports the side-by-side numbers that EXPERIMENTS.md records.
"""

from __future__ import annotations

import numpy as np

from repro.iplookup.leafpush import leaf_push
from repro.experiments.common import paper_table_config
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import UnibitTrie
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run", "PAPER_TRIE_STATS"]

#: the paper's published reference-table statistics
PAPER_TRIE_STATS = {
    "prefixes": 3725,
    "trie_nodes": 9726,
    "leaf_pushed_nodes": 16127,
}


@register("trie_stats", tags=("paper", "tables"))
def run(config: SyntheticTableConfig | None = None) -> ExperimentResult:
    """Measure the synthetic reference table against the paper's counts."""
    config = config or paper_table_config()
    table = generate_table(config)
    trie = UnibitTrie(table)
    pushed = leaf_push(trie)
    measured = {
        "prefixes": len(table),
        "trie_nodes": trie.num_nodes,
        "leaf_pushed_nodes": pushed.num_nodes,
    }
    rows = list(PAPER_TRIE_STATS)
    result = ExperimentResult(
        experiment_id="trie_stats",
        title="Reference routing-table trie statistics (Section V-E)",
        x_label="row",
        x_values=np.arange(len(rows), dtype=float),
    )
    result.add_series("paper", [PAPER_TRIE_STATS[r] for r in rows])
    result.add_series("synthetic", [measured[r] for r in rows])
    for row in rows:
        paper = PAPER_TRIE_STATS[row]
        got = measured[row]
        result.add_note(
            f"{row}: paper={paper} synthetic={got} "
            f"(deviation {abs(got - paper) / paper * 100:.1f}%)"
        )
    stats = pushed.stats()
    result.add_note(
        f"leaf-pushed split: {stats.internal_nodes} pointer nodes, "
        f"{stats.leaf_nodes} NHI leaves, depth {stats.depth}"
    )
    return result
