"""Shared experiment infrastructure: one scenario-construction path.

The figure sweeps (Figs. 5–8) and the design-space ablations
(:mod:`repro.analysis.sweeps`) all build scenarios the same way —
synthesize a table, build/map the trie, evaluate the power model — so
a single process-wide :class:`ScenarioEstimator` and a memoized
:func:`evaluate_scenario` live here and every experiment layers on
top.  The paper's published grid (schemes × K × grade) is exposed as
:func:`sweep_grid`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator, ScenarioResult, base_trie_stats
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.virt.schemes import Scheme

__all__ = [
    "PAPER_KS",
    "PAPER_ALPHAS",
    "PAPER_SEED",
    "paper_table_config",
    "scheme_label",
    "evaluate_scenario",
    "sweep_grid",
    "SCHEME_VARIANTS",
    "ESTIMATOR",
    "base_trie_stats",
]

#: the paper's K axis (Figs. 4–8): 1 to 15 virtual networks
PAPER_KS: tuple[int, ...] = tuple(range(1, 16))

#: the two merging efficiencies the paper evaluates
PAPER_ALPHAS: tuple[float, float] = (0.8, 0.2)

#: the RNG seed behind every paper-grid synthetic table — explicit so
#: cache keys and regression tests pin bit-identical tables
PAPER_SEED: int = 2012

#: (scheme, alpha) variants plotted in Figs. 5/7/8; Fig. 6 drops NV
SCHEME_VARIANTS: tuple[tuple[Scheme, float | None], ...] = (
    (Scheme.NV, None),
    (Scheme.VS, None),
    (Scheme.VM, 0.8),
    (Scheme.VM, 0.2),
)

#: the process-wide estimator every experiment and ablation shares
ESTIMATOR = ScenarioEstimator()


def paper_table_config(
    n_prefixes: int | None = None, seed: int = PAPER_SEED
) -> SyntheticTableConfig:
    """Table config with the experiment layer's explicit seed."""
    if n_prefixes is None:
        return SyntheticTableConfig(seed=seed)
    return SyntheticTableConfig(n_prefixes=n_prefixes, seed=seed)


def scheme_label(scheme: Scheme, alpha: float | None) -> str:
    """Series label used across all figure experiments."""
    if scheme is Scheme.VM and alpha is not None:
        return f"VM(a={int(alpha * 100)}%)"
    return scheme.name


@lru_cache(maxsize=None)
def evaluate_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Evaluate one scenario point (memoized process-wide).

    Every figure and ablation goes through this single entry so the
    trie-build/estimator scaffolding exists exactly once and repeated
    points (e.g. fig5 and fig8 sharing the same grid) are free.
    """
    return ESTIMATOR.evaluate(config)


@lru_cache(maxsize=None)
def _sweep_one(
    scheme: Scheme, alpha: float | None, grade: SpeedGrade, ks: tuple[int, ...]
) -> tuple[ScenarioResult, ...]:
    results = []
    for k in ks:
        config = ScenarioConfig(
            scheme=scheme,
            k=k,
            grade=grade,
            alpha=alpha,
            table=paper_table_config(),
        )
        results.append(evaluate_scenario(config))
    return tuple(results)


def sweep_grid(
    grade: SpeedGrade,
    ks: tuple[int, ...] = PAPER_KS,
    include_nv: bool = True,
) -> dict[str, tuple[ScenarioResult, ...]]:
    """Evaluate the paper's scenario grid at one speed grade (cached)."""
    grid: dict[str, tuple[ScenarioResult, ...]] = {}
    for scheme, alpha in SCHEME_VARIANTS:
        if scheme is Scheme.NV and not include_nv:
            continue
        grid[scheme_label(scheme, alpha)] = _sweep_one(scheme, alpha, grade, ks)
    return grid
