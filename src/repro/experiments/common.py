"""Shared experiment infrastructure.

The figure sweeps (Figs. 5–8) all evaluate the same scenario grid —
schemes {NV, VS, VM(α=0.8), VM(α=0.2)} × K = 1…15 × grades {-2, -1L} —
so results are computed once per grade and cached here.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator, ScenarioResult
from repro.fpga.speedgrade import SpeedGrade
from repro.virt.schemes import Scheme

__all__ = [
    "PAPER_KS",
    "PAPER_ALPHAS",
    "scheme_label",
    "sweep_grid",
    "SCHEME_VARIANTS",
]

#: the paper's K axis (Figs. 4–8): 1 to 15 virtual networks
PAPER_KS: tuple[int, ...] = tuple(range(1, 16))

#: the two merging efficiencies the paper evaluates
PAPER_ALPHAS: tuple[float, float] = (0.8, 0.2)

#: (scheme, alpha) variants plotted in Figs. 5/7/8; Fig. 6 drops NV
SCHEME_VARIANTS: tuple[tuple[Scheme, float | None], ...] = (
    (Scheme.NV, None),
    (Scheme.VS, None),
    (Scheme.VM, 0.8),
    (Scheme.VM, 0.2),
)

_ESTIMATOR = ScenarioEstimator()


def scheme_label(scheme: Scheme, alpha: float | None) -> str:
    """Series label used across all figure experiments."""
    if scheme is Scheme.VM and alpha is not None:
        return f"VM(a={int(alpha * 100)}%)"
    return scheme.name


@lru_cache(maxsize=None)
def _sweep_one(
    scheme: Scheme, alpha: float | None, grade: SpeedGrade, ks: tuple[int, ...]
) -> tuple[ScenarioResult, ...]:
    results = []
    for k in ks:
        config = ScenarioConfig(scheme=scheme, k=k, grade=grade, alpha=alpha)
        results.append(_ESTIMATOR.evaluate(config))
    return tuple(results)


def sweep_grid(
    grade: SpeedGrade,
    ks: tuple[int, ...] = PAPER_KS,
    include_nv: bool = True,
) -> dict[str, tuple[ScenarioResult, ...]]:
    """Evaluate the paper's scenario grid at one speed grade (cached)."""
    grid: dict[str, tuple[ScenarioResult, ...]] = {}
    for scheme, alpha in SCHEME_VARIANTS:
        if scheme is Scheme.NV and not include_nv:
            continue
        grid[scheme_label(scheme, alpha)] = _sweep_one(scheme, alpha, grade, ks)
    return grid
