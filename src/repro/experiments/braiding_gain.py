"""B2 — braided vs plain merging: measured merging efficiency.

The paper evaluates merging generically through α (Assumption 4) and
cites trie braiding [17] as one of the merging techniques its model
covers.  This experiment *measures* the α each technique actually
achieves on synthetic virtual tables across structural-overlap levels,
quantifying what a better merge buys the merged scheme's memory — and
what the twist bitmaps cost.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import bits_to_mb
from repro.virt.braiding import braid_tries
from repro.virt.merged import merge_tries

__all__ = ["run"]


@register("braiding", tags=("extras",))
def run(
    k: int = 4,
    shared_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    table: SyntheticTableConfig | None = None,
) -> ExperimentResult:
    """Measure plain vs braided α over structural overlap levels."""
    table = table or SyntheticTableConfig(n_prefixes=400, seed=71)
    fractions = tuple(shared_fractions)
    result = ExperimentResult(
        experiment_id="braiding",
        title=f"B2: merging efficiency, plain vs braided (K={k})",
        x_label="shared_fraction",
        x_values=np.asarray(fractions, dtype=float),
    )
    plain_alpha = []
    braided_alpha = []
    plain_nodes = []
    braided_nodes = []
    twist_mb = []
    for fraction in fractions:
        tables = generate_virtual_tables(k, fraction, table)
        tries = [UnibitTrie(t) for t in tables]
        plain = merge_tries(tries)
        braided = braid_tries(tries)
        plain_alpha.append(plain.pairwise_alpha)
        braided_alpha.append(braided.pairwise_alpha)
        plain_nodes.append(plain.num_nodes)
        braided_nodes.append(braided.num_nodes)
        twist_mb.append(bits_to_mb(braided.twist_bits_memory()))
    result.add_series("plain_alpha", plain_alpha)
    result.add_series("braided_alpha", braided_alpha)
    result.add_series("plain_nodes", plain_nodes)
    result.add_series("braided_nodes", braided_nodes)
    result.add_series("twist_bits_Mb", twist_mb)
    gain = np.asarray(braided_alpha) - np.asarray(plain_alpha)
    result.add_note(
        f"braiding gains up to {gain.max():+.3f} pairwise alpha; the gain "
        "shrinks as tables already share structure"
    )
    result.add_note("twist bitmaps cost 1 bit x K per shape node (last column)")
    return result
