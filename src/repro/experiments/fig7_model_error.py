"""Fig. 7 — percentage error of the model vs experimental results.

Paper caption: "Percentage error of the model estimation compared with
the experimental results for speed grades -2 (left) and -1L (right)",
computed as (P_model − P_experimental)/P_experimental × 100 %.

Paper claims reproduced here: maximum error within ±3 %, and the
NV/VS errors "much less compared to that of virtualized-merged"
(the merged designs use far more BRAM per stage, so synthesis-tool
placement and routing optimizations bite harder).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.validation import PAPER_MAX_ERROR_PCT
from repro.experiments.common import PAPER_KS, sweep_grid
from repro.fpga.speedgrade import SpeedGrade
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult

__all__ = ["run"]


@register(
    "fig7",
    axes={"grade": (SpeedGrade.G2, SpeedGrade.G1L)},
    tags=("paper", "figures", "graded"),
)
def run(
    grade: SpeedGrade = SpeedGrade.G2, ks: Sequence[int] = PAPER_KS
) -> ExperimentResult:
    """Regenerate one Fig. 7 panel (percentage error per scheme)."""
    ks = tuple(ks)
    grid = sweep_grid(grade, ks)
    result = ExperimentResult(
        experiment_id="fig7",
        title=f"Model percentage error vs experimental, grade {grade} (%)",
        x_label="K",
        x_values=np.asarray(ks, dtype=float),
    )
    for label, results in grid.items():
        result.add_series(label, [r.percentage_error for r in results])
    worst = max(
        float(np.abs(series.values).max()) for series in result.series
    )
    result.add_note(
        f"max |error| = {worst:.2f}% (paper bound: +/-{PAPER_MAX_ERROR_PCT:.0f}%)"
    )
    nv_vs_max = max(
        float(np.abs(result.get("NV")).max()), float(np.abs(result.get("VS")).max())
    )
    vm_max = max(
        float(np.abs(result.get("VM(a=80%)")).max()),
        float(np.abs(result.get("VM(a=20%)")).max()),
    )
    result.add_note(
        f"NV/VS max |error| {nv_vs_max:.2f}% < merged max |error| {vm_max:.2f}% "
        "(paper: NV/VS error much less than merged)"
    )
    return result
