"""Run manifests: provenance for every engine invocation.

Each ``repro-experiments`` invocation writes a JSON manifest recording
what ran, from where (cache hit vs fresh execution), how long it took
and under which environment — enough to audit a regenerated figure or
to check the cache is actually doing its job (the CI figures job
uploads the manifest next to the CSV/SVG artifacts).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import __version__
from repro.experiments.cache import CACHE_SALT, canonical_params

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.engine import RunRecord

__all__ = ["environment_info", "build_manifest", "write_manifest"]

#: manifest schema version (bump on incompatible layout changes)
MANIFEST_VERSION = 1


def environment_info() -> dict[str, str]:
    """Interpreter/platform identity recorded in every manifest."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": np.__version__,
        "repro": __version__,
        "cache_salt": CACHE_SALT,
    }


def build_manifest(
    records: list["RunRecord"],
    *,
    jobs: int,
    cache_dir: str,
    cache_enabled: bool,
    wall_time_s: float,
) -> dict[str, Any]:
    """Assemble the manifest dict for one engine invocation."""
    runs = []
    for record in records:
        runs.append(
            {
                "experiment_id": record.experiment_id,
                "variant": record.variant,
                "params": canonical_params(record.params),
                "spec_hash": record.spec_hash,
                "status": record.status,
                "cache_hit": record.cache_hit,
                "wall_time_s": round(record.wall_time_s, 6),
                "error": record.error,
            }
        )
    statuses = [record.status for record in records]
    return {
        "manifest_version": MANIFEST_VERSION,
        "created_unix": time.time(),
        "jobs": jobs,
        "cache": {"dir": cache_dir, "enabled": cache_enabled},
        "environment": environment_info(),
        "totals": {
            "runs": len(records),
            "cache_hits": sum(record.cache_hit for record in records),
            "executed": sum(
                1
                for record in records
                if record.status == "ok" and not record.cache_hit
            ),
            "failed": statuses.count("error"),
            "skipped": statuses.count("skipped"),
            "wall_time_s": round(wall_time_s, 6),
        },
        "runs": runs,
    }


def write_manifest(path: str, manifest: dict[str, Any]) -> None:
    """Write ``manifest`` as JSON at ``path`` (directories created)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
