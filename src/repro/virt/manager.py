"""Virtual-router lifecycle management.

The paper's architecture is static: tables are merged or replicated
once, then measured.  A deployable virtual router must also handle
the control-plane feed — per-VN route announcements/withdrawals —
while the data plane keeps forwarding.  :class:`VirtualRouterManager`
provides that layer over both virtualized schemes:

* per-VN updates are applied incrementally to the per-VN tries
  (the separate scheme's engines update in place);
* the merged structure is rebuilt lazily on the next lookup — the
  "shadow table" update pattern of the authors' FPL'11 companion
  work — and the manager tracks how much structure each refresh
  touched;
* update statistics convert into the effective BRAM write rate that
  feeds the power models (see :mod:`repro.iplookup.updates`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, MergeError
from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.iplookup.updates import (
    RouteUpdate,
    UpdateKind,
    UpdateStats,
    apply_update,
    effective_write_rate,
)
from repro.virt.merged import MergedTrie, merge_tries

__all__ = ["VirtualRouterManager"]


class VirtualRouterManager:
    """Manage K virtual networks' tables, tries and the merged view.

    Parameters
    ----------
    tables:
        Initial per-VN routing tables; copied defensively so the
        caller's tables are not mutated by updates.
    """

    def __init__(self, tables: list[RoutingTable]):
        if not tables:
            raise ConfigurationError("need at least one virtual network")
        self.k = len(tables)
        self._tables = [RoutingTable.from_routes(t.routes(), name=t.name) for t in tables]
        self._tries = [UnibitTrie(t) for t in self._tables]
        self._stats = [UpdateStats() for _ in range(self.k)]
        self._merged: MergedTrie | None = None
        self._merged_rebuilds = 0

    # -- control plane ---------------------------------------------------

    def _check_vn(self, vn: int) -> None:
        if not 0 <= vn < self.k:
            raise MergeError(f"vnid {vn} out of range 0..{self.k - 1}")

    def announce(self, vn: int, prefix: Prefix, next_hop: int) -> None:
        """Announce (insert or replace) a route in virtual network ``vn``.

        Re-announcing an identical route (a common BGP churn event) is
        a no-op: the update statistics record it as such and the
        merged view is *not* invalidated, so churn streams dominated
        by duplicate announcements do not trigger needless full
        merged-trie rebuilds.
        """
        self._check_vn(vn)
        self._tables[vn].add(prefix, next_hop)
        stats = self._stats[vn]
        touched_before = (stats.nodes_created, stats.nodes_pruned, stats.nhi_changes)
        apply_update(
            self._tries[vn],
            RouteUpdate(UpdateKind.ANNOUNCE, prefix, next_hop),
            stats,
        )
        if (stats.nodes_created, stats.nodes_pruned, stats.nhi_changes) != touched_before:
            self._merged = None

    def withdraw(self, vn: int, prefix: Prefix) -> bool:
        """Withdraw a route from virtual network ``vn``.

        Returns True if the route existed.
        """
        self._check_vn(vn)
        existed = prefix in self._tables[vn]
        if existed:
            self._tables[vn].remove(prefix)
        apply_update(
            self._tries[vn],
            RouteUpdate(UpdateKind.WITHDRAW, prefix),
            self._stats[vn],
        )
        if existed:
            self._merged = None
        return existed

    def apply(self, vn: int, updates: list[RouteUpdate]) -> None:
        """Apply an update stream to virtual network ``vn``."""
        for update in updates:
            if update.kind is UpdateKind.ANNOUNCE:
                self.announce(vn, update.prefix, update.next_hop)
            else:
                self.withdraw(vn, update.prefix)

    # -- data plane --------------------------------------------------------

    def table(self, vn: int) -> RoutingTable:
        """The current RIB of virtual network ``vn`` (live view)."""
        self._check_vn(vn)
        return self._tables[vn]

    def trie(self, vn: int) -> UnibitTrie:
        """The incrementally-maintained trie of virtual network ``vn``."""
        self._check_vn(vn)
        return self._tries[vn]

    def merged(self) -> MergedTrie:
        """The merged view, rebuilt lazily after updates."""
        if self._merged is None:
            self._merged = merge_tries(self._tries)
            self._merged_rebuilds += 1
        return self._merged

    @property
    def merged_rebuilds(self) -> int:
        """How many times the merged structure has been refreshed."""
        return self._merged_rebuilds

    def lookup(self, address: int, vn: int) -> int:
        """Separate-scheme lookup for ``address`` in network ``vn``."""
        self._check_vn(vn)
        return self._tries[vn].lookup(address)

    def lookup_merged(self, address: int, vn: int) -> int:
        """Merged-scheme lookup (through the lazily-refreshed union)."""
        return self.merged().lookup(address, vn)

    # -- consistency & accounting -------------------------------------------

    def verify_consistency(self, samples: int = 128, seed: int = 0) -> bool:
        """Cross-check tries and merged view against the RIB oracle."""
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1 << 32, size=samples, dtype=np.uint64).astype(
            np.uint32
        )
        merged = self.merged()
        for vn, table in enumerate(self._tables):
            oracle = table.lookup_linear_batch(addresses)
            if not np.array_equal(self._tries[vn].lookup_batch(addresses), oracle):
                return False
            got = merged.lookup_batch(addresses, np.full(len(addresses), vn))
            if not np.array_equal(got, oracle):
                return False
        return True

    def update_stats(self, vn: int) -> UpdateStats:
        """Accumulated update statistics for virtual network ``vn``."""
        self._check_vn(vn)
        return self._stats[vn]

    def write_rate(
        self, updates_per_second: float, lookup_rate_mhz: float, n_stages: int = 28
    ) -> float:
        """Aggregate effective BRAM write rate across all VNs.

        Feed this into :class:`repro.core.power.AnalyticalPowerModel`
        (its ``write_rate`` parameter) to close the update→power loop.
        """
        combined = UpdateStats()
        for stats in self._stats:
            combined.announces += stats.announces
            combined.withdraws += stats.withdraws
            combined.no_ops += stats.no_ops
            combined.nodes_created += stats.nodes_created
            combined.nodes_pruned += stats.nodes_pruned
            combined.nhi_changes += stats.nhi_changes
            combined._writes_per_update.extend(stats._writes_per_update)
        return effective_write_rate(
            combined, updates_per_second, lookup_rate_mhz, n_stages
        )
