"""Traffic and utilization modeling (paper Section III, Assumption 1).

The paper assumes network traffic uniformly distributed over the K
virtual routers (µᵢ = 1/K) and notes that "more complex distributions
can be modeled by appropriately changing the µᵢ values".  This module
provides both: the uniform vector, a Zipf-skewed generalization used
by the ablation benches, and a packet-stream generator that draws
destination addresses from each virtual network's routed space so
pipeline simulations exercise real trie paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.iplookup.rib import RoutingTable

__all__ = ["uniform_utilization", "zipf_utilization", "TrafficModel"]


def uniform_utilization(k: int) -> np.ndarray:
    """Assumption 1: µᵢ = 1/K for every virtual network."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return np.full(k, 1.0 / k)


def zipf_utilization(k: int, s: float = 1.0) -> np.ndarray:
    """Zipf-skewed utilization: µᵢ ∝ (i+1)^-s, normalized to sum 1.

    ``s = 0`` recovers the uniform vector; larger ``s`` concentrates
    traffic on the first virtual networks — the "edge networks with
    very different duty cycles" case the paper's introduction motivates.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if s < 0:
        raise ConfigurationError(f"zipf exponent must be non-negative, got {s}")
    weights = np.arange(1, k + 1, dtype=float) ** (-s)
    return weights / weights.sum()


@dataclass(frozen=True)
class TrafficModel:
    """Packet workload description for a K-virtual-network router.

    Attributes
    ----------
    utilizations:
        Per-VN load fractions µᵢ; must sum to 1.
    duty_cycle:
        Fraction of cycles carrying any packet at all (1 = saturated).
        During the idle remainder, gated resources dissipate no
        dynamic power (Section IV).
    miss_fraction:
        Fraction of generated packets aimed outside any routed prefix
        (exercises the lookup-miss path).
    """

    utilizations: np.ndarray
    duty_cycle: float = 1.0
    miss_fraction: float = 0.05

    def __post_init__(self) -> None:
        mu = np.asarray(self.utilizations, dtype=float)
        if mu.ndim != 1 or len(mu) == 0:
            raise ConfigurationError("utilizations must be a non-empty 1-D vector")
        if (mu < 0).any():
            raise ConfigurationError("utilizations must be non-negative")
        if abs(mu.sum() - 1.0) > 1e-9:
            raise ConfigurationError(f"utilizations must sum to 1, got {mu.sum():.6f}")
        object.__setattr__(self, "utilizations", mu)
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        if not 0.0 <= self.miss_fraction <= 1.0:
            raise ConfigurationError("miss_fraction must be in [0, 1]")

    @property
    def k(self) -> int:
        return len(self.utilizations)

    @classmethod
    def uniform(cls, k: int, duty_cycle: float = 1.0) -> "TrafficModel":
        """The paper's Assumption 1 workload."""
        return cls(utilizations=uniform_utilization(k), duty_cycle=duty_cycle)

    def generate(
        self,
        n_packets: int,
        tables: list[RoutingTable],
        seed: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``(addresses, vnids)`` for a packet stream.

        Each packet picks its VN by µ, then draws a destination inside
        a random routed prefix of that VN's table (random host bits),
        or — with probability ``miss_fraction`` — a uniformly random
        address that may miss the table entirely.
        """
        if n_packets < 0:
            raise ConfigurationError("n_packets must be non-negative")
        if len(tables) != self.k:
            raise ConfigurationError(
                f"expected {self.k} tables (one per VN), got {len(tables)}"
            )
        rng = np.random.default_rng(seed)
        vnids = rng.choice(self.k, size=n_packets, p=self.utilizations)
        addresses = np.empty(n_packets, dtype=np.uint32)
        prefix_cache = [table.prefixes() for table in tables]
        for i in range(n_packets):
            if rng.random() < self.miss_fraction or not prefix_cache[vnids[i]]:
                addresses[i] = rng.integers(0, 1 << 32, dtype=np.uint64)
                continue
            prefixes = prefix_cache[vnids[i]]
            prefix = prefixes[int(rng.integers(0, len(prefixes)))]
            host_bits = 32 - prefix.length
            host = int(rng.integers(0, 1 << host_bits)) if host_bits else 0
            addresses[i] = prefix.value | host
        return addresses, vnids.astype(np.int64)

    def inter_arrival_gap(self) -> int:
        """Pipeline idle cycles per packet implied by the duty cycle."""
        if self.duty_cycle >= 1.0:
            return 0
        return max(0, round(1.0 / self.duty_cycle) - 1)
