"""Scheme descriptors: NV, VS, VM (paper Section III notation)."""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError

__all__ = ["Scheme"]


class Scheme(enum.Enum):
    """The three router deployment schemes the paper compares."""

    #: non-virtualized: dedicated device per network
    NV = "non-virtualized"
    #: virtualized-separate: per-network engines on one shared device
    VS = "virtualized-separate"
    #: virtualized-merged: one shared engine over a merged trie
    VM = "virtualized-merged"

    @property
    def is_virtualized(self) -> bool:
        """True for the single-device schemes (VS, VM)."""
        return self is not Scheme.NV

    @property
    def shares_engine(self) -> bool:
        """True when all virtual networks time-share one engine (VM)."""
        return self is Scheme.VM

    def devices_required(self, k: int) -> int:
        """Physical devices needed for ``k`` virtual networks (Eq. 1/3/5)."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return k if self is Scheme.NV else 1

    def engines_required(self, k: int) -> int:
        """Lookup pipelines instantiated for ``k`` virtual networks."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return 1 if self is Scheme.VM else k

    @classmethod
    def parse(cls, text: str) -> "Scheme":
        """Parse ``"NV"``/``"VS"``/``"VM"`` or the long names."""
        normalized = text.strip().upper()
        for scheme in cls:
            if scheme.name == normalized or scheme.value.upper() == normalized:
                return scheme
        raise ConfigurationError(f"unknown scheme {text!r}; expected NV, VS or VM")

    def __str__(self) -> str:
        return self.name
