"""QoS and throughput guarantees for time-shared (merged) engines.

The paper's Section IV-C scalability discussion: "when we merge two
routing tables, the lookup engine has to be able to sustain the
required throughputs of the two virtual networks, even in the worst
case.  When multiple such routing tables are merged, the throughput is
shared among the virtual networks, hence at some point, the lookup
engine may fail to sustain the required throughput."

This module makes that check concrete:

* :func:`admissible` — can one engine of a given capacity carry the
  per-VN worst-case demands?
* :class:`WeightedScheduler` — a cycle-level weighted-round-robin
  admission scheduler for the merged engine's single input port; its
  simulation measures per-VN achieved service and worst-case waits,
  demonstrating that admissible demand vectors are actually served.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError

__all__ = ["AdmissionReport", "admissible", "check_admission", "WeightedScheduler"]


@dataclass(frozen=True)
class AdmissionReport:
    """Outcome of an admission check on a shared engine."""

    capacity_gbps: float
    demands_gbps: tuple[float, ...]
    admissible: bool
    utilization: float
    headroom_gbps: float

    @property
    def k(self) -> int:
        return len(self.demands_gbps)


def check_admission(capacity_gbps: float, demands_gbps: Iterable[float]) -> AdmissionReport:
    """Evaluate whether a shared engine can carry all demands.

    A single time-shared pipeline serves ΣᵢDᵢ only if the sum fits in
    its capacity; individual demands cannot exceed the line rate
    either (a VN cannot be served faster than the engine's clock).
    """
    if capacity_gbps <= 0:
        raise ConfigurationError("capacity must be positive")
    demands = tuple(float(d) for d in demands_gbps)
    if not demands:
        raise ConfigurationError("need at least one demand")
    if any(d < 0 for d in demands):
        raise ConfigurationError("demands must be non-negative")
    total = sum(demands)
    ok = total <= capacity_gbps and max(demands) <= capacity_gbps
    return AdmissionReport(
        capacity_gbps=capacity_gbps,
        demands_gbps=demands,
        admissible=ok,
        utilization=total / capacity_gbps,
        headroom_gbps=capacity_gbps - total,
    )


def admissible(capacity_gbps: float, demands_gbps: Iterable[float]) -> bool:
    """Shorthand: True when the demand vector fits the shared engine."""
    return check_admission(capacity_gbps, demands_gbps).admissible


class WeightedScheduler:
    """Weighted round-robin admission into a shared lookup pipeline.

    Each cycle admits one lookup; the scheduler picks the backlogged
    VN with the largest credit deficit (deficit round robin with unit
    quantum scaled by weight).  Weights default to the demand shares,
    giving each VN service proportional to its guarantee.
    """

    def __init__(self, weights):
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or len(w) == 0:
            raise ConfigurationError("weights must be a non-empty vector")
        if (w <= 0).any():
            raise ConfigurationError("weights must be positive")
        self.weights = w / w.sum()
        self.k = len(w)

    def simulate(self, arrivals: np.ndarray) -> dict[str, np.ndarray]:
        """Serve an arrival matrix and measure per-VN service.

        Parameters
        ----------
        arrivals:
            Integer matrix of shape ``(cycles, k)``: packets arriving
            per VN per cycle.

        Returns a dict with per-VN ``served`` counts, final ``backlog``
        and the ``max_backlog`` high-water mark per VN.
        """
        arrivals = np.asarray(arrivals, dtype=np.int64)
        if arrivals.ndim != 2 or arrivals.shape[1] != self.k:
            raise ConfigurationError(f"arrivals must have shape (cycles, {self.k})")
        if (arrivals < 0).any():
            raise ConfigurationError("arrivals must be non-negative")
        backlog = np.zeros(self.k, dtype=np.int64)
        served = np.zeros(self.k, dtype=np.int64)
        max_backlog = np.zeros(self.k, dtype=np.int64)
        credit = np.zeros(self.k, dtype=float)
        for cycle in range(arrivals.shape[0]):
            backlog += arrivals[cycle]
            np.maximum(max_backlog, backlog, out=max_backlog)
            credit += self.weights
            eligible = backlog > 0
            if eligible.any():
                # serve the eligible VN with the most accumulated credit
                masked = np.where(eligible, credit, -np.inf)
                vn = int(masked.argmax())
                backlog[vn] -= 1
                served[vn] += 1
                credit[vn] -= 1.0
        return {"served": served, "backlog": backlog, "max_backlog": max_backlog}

    def verify_guarantee(
        self,
        demands_fraction: np.ndarray,
        cycles: int = 5000,
        seed: int = 0,
        tolerance: float = 0.05,
        arrivals: np.ndarray | None = None,
    ) -> bool:
        """Check each VN receives at least its admitted service share.

        Offers Bernoulli traffic at ``demands_fraction`` (per-VN
        packets per cycle; the sum must be ≤ 1 for an admissible
        load) and verifies every VN's served fraction reaches its
        demand within ``tolerance``.  Pass ``arrivals`` (an integer
        ``(cycles, k)`` matrix, e.g. a recorded burst) to replay a
        concrete realization of those demands instead of sampling —
        temporal structure matters: a burst arriving after the other
        VNs' idle slots have passed cannot borrow them back.

        End-of-run backlog is credited as in flight only up to a
        *bounded* allowance of ``ceil(weight · cycles · tolerance)``
        packets per VN — roughly the queue a VN at its fair service
        rate can transiently hold without breaching the tolerance.
        (Crediting the whole backlog would make the check vacuous:
        :meth:`simulate` conserves packets, so offered always equals
        served + backlog and the shortfall would be identically zero —
        even for a VN the weights fully starve.)
        """
        demands = np.asarray(demands_fraction, dtype=float)
        if demands.sum() > 1.0 + 1e-9:
            raise CapacityError(
                f"offered load {demands.sum():.2f} exceeds the shared engine"
            )
        if arrivals is None:
            rng = np.random.default_rng(seed)
            arrivals = (rng.random((cycles, self.k)) < demands[None, :]).astype(
                np.int64
            )
        else:
            arrivals = np.asarray(arrivals, dtype=np.int64)
            cycles = arrivals.shape[0]
        outcome = self.simulate(arrivals)
        offered = arrivals.sum(axis=0)
        allowance = np.ceil(self.weights * cycles * tolerance)
        served = outcome["served"] + np.minimum(outcome["backlog"], allowance)
        # every VN must have been served nearly everything it offered
        shortfall = (offered - served) / np.maximum(offered, 1)
        return bool((shortfall <= tolerance).all())
