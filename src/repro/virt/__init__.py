"""Router virtualization schemes (paper Sections II–IV).

Three deployment schemes are modeled:

* **NV** — non-virtualized: one device per network (conventional).
* **VS** — virtualized-separate: K independent lookup engines
  space-share one device behind a packet distributor.
* **VM** — virtualized-merged: one engine time-shares a merged trie;
  leaves hold VNID-indexed next-hop vectors.

The merged machinery *measures* merging efficiency α on real tries
(the paper's `common nodes / total nodes` definition plus the pairwise
form its model sweeps use); the traffic model implements Assumption 1
(uniform utilization µᵢ = 1/K) and its generalizations.
"""

from repro.virt.schemes import Scheme
from repro.virt.traffic import TrafficModel, uniform_utilization, zipf_utilization
from repro.virt.merged import MergedTrie, merge_tries, pairwise_alpha_from_global, global_alpha_from_pairwise
from repro.virt.separate import SeparateVirtualRouter
from repro.virt.distributor import Distributor
from repro.virt.vnid import vnid_bits, encode_vnid, decode_vnid
from repro.virt.manager import VirtualRouterManager
from repro.virt.qos import AdmissionReport, WeightedScheduler, admissible, check_admission
from repro.virt.braiding import BraidedTrie, braid_tries
from repro.virt.queueing import LatencyReport, md1_wait_ns, scheme_latency_ns

__all__ = [
    "Scheme",
    "TrafficModel",
    "uniform_utilization",
    "zipf_utilization",
    "MergedTrie",
    "merge_tries",
    "pairwise_alpha_from_global",
    "global_alpha_from_pairwise",
    "SeparateVirtualRouter",
    "Distributor",
    "vnid_bits",
    "encode_vnid",
    "decode_vnid",
    "VirtualRouterManager",
    "AdmissionReport",
    "WeightedScheduler",
    "admissible",
    "check_admission",
    "BraidedTrie",
    "braid_tries",
    "LatencyReport",
    "md1_wait_ns",
    "scheme_latency_ns",
]
