"""Merged router virtualization: trie merging with measured α.

The merged scheme (paper Section IV-C) unions the K virtual tries into
one structure whose leaves carry a VNID-indexed vector of next hops
(Section V-D).  The merge exploits structural similarity: a node at
the same root path in several tries is stored once.

Merging efficiency is the paper's Assumption 4:

    α_global = common nodes / total nodes
             = (Σᵢ nodes(trieᵢ) − union nodes) / Σᵢ nodes(trieᵢ)

α_global is bounded by (K−1)/K (identical tables), so the *model
parameter* the paper sweeps (α = 20 %, 80 % independent of K) is the
pairwise/incremental form: merged nodes = M·(1 + (K−1)(1−α_pair)) for
K equal-size tables.  Both are measured here and interconvert via
``α_pair = α_global · K/(K−1)`` (see DESIGN.md §2 for why we adopt
this reading of the paper's Eq. 5).

The merged trie produced is full and leaf-pushed: every internal node
has both children and every leaf holds the K-wide NHI vector of each
virtual network's longest matching prefix along the leaf's path — so a
single walk of the union structure answers lookups for every VN.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MergeError
from repro.iplookup.rib import NO_ROUTE
from repro.iplookup.trie import NONE, TrieStats, UnibitTrie
from repro.obs.registry import REGISTRY

__all__ = [
    "MergedTrie",
    "merge_tries",
    "pairwise_alpha_from_global",
    "global_alpha_from_pairwise",
]


def pairwise_alpha_from_global(alpha_global: float, k: int) -> float:
    """Convert the paper's common/total α into the model's pairwise α."""
    if k < 2:
        raise MergeError("pairwise alpha requires k >= 2")
    if not 0.0 <= alpha_global <= (k - 1) / k + 1e-12:
        raise MergeError(
            f"alpha_global {alpha_global:.3f} out of range [0, {(k - 1) / k:.3f}] for k={k}"
        )
    return min(1.0, alpha_global * k / (k - 1))


def global_alpha_from_pairwise(alpha_pair: float, k: int) -> float:
    """Convert a pairwise/model α into the common/total measurement."""
    if k < 2:
        raise MergeError("pairwise alpha requires k >= 2")
    if not 0.0 <= alpha_pair <= 1.0:
        raise MergeError(f"alpha_pair must be in [0, 1], got {alpha_pair}")
    return alpha_pair * (k - 1) / k


class MergedTrie:
    """Union trie over K virtual networks with per-leaf NHI vectors.

    **Immutability invariant.** The merged structure is never mutated
    after construction: control-plane updates go to the per-VN tries
    and the merged view is *rebuilt* (see
    :class:`repro.virt.manager.VirtualRouterManager`), mirroring the
    shadow-table update pattern of the authors' FPL'11 companion
    work.  Freezing the child/leaf/NHI-matrix arrays once here is
    therefore sound — there is no invalidation path to miss, unlike
    :class:`~repro.iplookup.trie.UnibitTrie` whose ``_frozen`` cache
    must be dropped on every mutating insert/remove.
    """

    #: root-stride of the precomputed jump table (a 2^s-entry direct
    #: index over the top s address bits, skipping the first s levels
    #: of the walk — the same idea as a multibit root table).  The
    #: table itself now comes from the structure's shared
    #: :class:`~repro.iplookup.trie.FrozenWalk`, whose stride is
    #: :attr:`UnibitTrie.JUMP_STRIDE`; this mirror is kept for
    #: documentation and so existing consumers can read the stride.
    JUMP_STRIDE = UnibitTrie.JUMP_STRIDE

    __slots__ = (
        "structure",
        "k",
        "_vectors",
        "union_input_nodes",
        "sum_input_nodes",
        "_childflat",
        "_leaf",
        "_levels",
        "_nhi_matrix",
        "_depth",
        "_jump",
        "_jump_stride",
    )

    def __init__(
        self,
        structure: UnibitTrie,
        vectors: list[np.ndarray | None],
        k: int,
        union_input_nodes: int,
        sum_input_nodes: int,
    ):
        if len(vectors) != structure.num_nodes:
            raise MergeError("one NHI vector slot per structure node required")
        self.structure = structure
        self.k = k
        self._vectors = vectors
        self.union_input_nodes = union_input_nodes
        self.sum_input_nodes = sum_input_nodes
        # freeze the lookup arrays once — the structure is immutable
        # (see class docstring), so no per-call revalidation is needed.
        # The per-VN engines share the exact same FrozenWalk layout
        # (flat self-looping child array, levels, root jump table);
        # for a full trie the frozen arrays carry no parked nodes, so
        # every walk lands on a real leaf index, which is what lets
        # the 2-D NHI gather below index the leaf's vector directly.
        frozen = structure._freeze()
        left, right = frozen.left, frozen.right
        n_nodes = len(left)
        if len(frozen.childflat) != 2 * n_nodes:
            raise MergeError(
                "merged structure must be full (leaf-pushed): a node with "
                "exactly one child cannot carry a per-leaf NHI vector"
            )
        self._leaf = left == NONE  # full trie: leaf iff left child missing
        self._depth = frozen.depth
        self._levels = frozen.levels
        self._childflat = frozen.childflat
        leaves = np.flatnonzero(self._leaf)
        self._nhi_matrix = np.full((n_nodes, k), NO_ROUTE, dtype=np.int64)
        for node in leaves:
            vector = vectors[node]
            if vector is None:
                raise MergeError(f"leaf node {node} is missing its NHI vector")
            self._nhi_matrix[node] = vector
        # jump table over the top s bits: entry p is the node reached
        # after walking the s-bit pattern p from the root (or the leaf
        # the walk parked on above level s).
        self._jump_stride = frozen.jump_stride
        self._jump = frozen.jump

    # -- merging efficiency ------------------------------------------------

    @property
    def global_alpha(self) -> float:
        """Paper Assumption 4: common nodes / total nodes."""
        if self.sum_input_nodes == 0:
            return 0.0
        return (self.sum_input_nodes - self.union_input_nodes) / self.sum_input_nodes

    @property
    def pairwise_alpha(self) -> float:
        """The model-parameter α: per-additional-table overlap fraction."""
        if self.k < 2:
            return 1.0
        return pairwise_alpha_from_global(self.global_alpha, self.k)

    # -- structure & memory accounting ---------------------------------------

    @property
    def num_nodes(self) -> int:
        """Nodes in the final (leaf-pushed) merged trie."""
        return self.structure.num_nodes

    def stats(self) -> TrieStats:
        """Per-level statistics of the merged structure.

        Feed to :func:`repro.iplookup.mapping.map_trie_to_stages` with
        ``nhi_vector_width=k`` to size the merged engine's memories.
        """
        return self.structure.stats()

    def leaf_vector(self, node: int) -> np.ndarray:
        """The K-wide NHI vector stored at leaf ``node``."""
        vector = self._vectors[node]
        if vector is None:
            raise MergeError(f"node {node} is not a leaf")
        return vector

    # -- lookup ---------------------------------------------------------------

    def lookup(self, address: int, vnid: int) -> int:
        """LPM for ``address`` within virtual network ``vnid``."""
        if not 0 <= vnid < self.k:
            raise MergeError(f"vnid {vnid} out of range 0..{self.k - 1}")
        trie = self.structure
        node = 0
        level = 0
        while not trie.is_leaf(node):
            bit = (address >> (31 - level)) & 1
            node = trie.right(node) if bit else trie.left(node)
            level += 1
        return int(self._vectors[node][vnid])

    def walk_batch(
        self, addresses: np.ndarray, vnids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized merged walk over (address, vnid) pairs.

        Returns per-pair ``(depths, results)``: the level of the leaf
        each address lands on (stages the shared engine touches) and
        the VN's next hop gathered from that leaf's K-wide vector.
        The jump table resolves the first ``s`` levels with one
        gather; the remaining levels are one gather each over the
        flat self-looping child array; depths come from the frozen
        node-level array and results from a single 2-D NumPy gather
        ``nhi_matrix[leaf, vnid]`` — no per-packet Python anywhere.
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        vnids = np.asarray(vnids, dtype=np.int64)
        if addresses.shape != vnids.shape:
            raise MergeError("addresses and vnids must have the same shape")
        if len(addresses) and (vnids.min() < 0 or vnids.max() >= self.k):
            raise MergeError("vnid out of range")
        addr64 = addresses.astype(np.int64)
        stride = self._jump_stride
        if stride:
            node = self._jump[addr64 >> (32 - stride)]
        else:
            node = np.zeros(len(addresses), dtype=np.int64)
        childflat = self._childflat
        for lvl in range(stride, self._depth):
            node = childflat[(node << 1) | ((addr64 >> (31 - lvl)) & 1)]
        depths = self._levels[node]
        if REGISTRY.enabled:  # one branch per batch; zero overhead off
            REGISTRY.counter(
                "repro_trie_node_visits_total",
                "Trie nodes touched by batch walks (root included)",
                labels=("structure",),
            ).labels("merged").inc(int(depths.sum()) + len(addresses))
        return depths, self._nhi_matrix[node, vnids]

    def lookup_batch(self, addresses: np.ndarray, vnids: np.ndarray) -> np.ndarray:
        """Vectorized merged lookup over (address, vnid) pairs."""
        return self.walk_batch(addresses, vnids)[1]


def merge_tries(tries: list[UnibitTrie]) -> MergedTrie:
    """Merge K per-VN tries into one :class:`MergedTrie`.

    Input tries may be plain or leaf-pushed; inherited next hops are
    tracked per VN during the simultaneous walk, so the result is
    always the full, leaf-pushed union with correct per-VN vectors.
    """
    if not tries:
        raise MergeError("need at least one trie to merge")
    k = len(tries)
    widths = {t.width for t in tries}
    if len(widths) > 1:
        raise MergeError(f"cannot merge tries of mixed widths {sorted(widths)}")
    # inherit the input width: merging 128-bit (IPv6) tries must build
    # a 128-bit union structure, not the 32-bit default
    structure = UnibitTrie(width=widths.pop())
    vectors: list[np.ndarray | None] = [None]
    union_input_nodes = 0
    sum_input_nodes = sum(t.num_nodes for t in tries)

    # stack entries: (per-trie node index or NONE, dst node, inherited NHI per VN)
    roots = np.zeros(k, dtype=np.int64)
    inherited0 = np.array([t.nhi(0) for t in tries], dtype=np.int64)
    stack: list[tuple[np.ndarray, int, np.ndarray]] = [(roots, 0, inherited0)]
    union_input_nodes += 1

    while stack:
        src, dst, inherited = stack.pop()
        # collect each VN's own NHI at this union node
        inherited = inherited.copy()
        any_left = False
        any_right = False
        lefts = np.full(k, NONE, dtype=np.int64)
        rights = np.full(k, NONE, dtype=np.int64)
        for i, trie in enumerate(tries):
            node = int(src[i])
            if node == NONE:
                continue
            nhi = trie.nhi(node)
            if nhi != NO_ROUTE:
                inherited[i] = nhi
            lefts[i] = trie.left(node)
            rights[i] = trie.right(node)
            if lefts[i] != NONE:
                any_left = True
            if rights[i] != NONE:
                any_right = True

        if not any_left and not any_right:
            # union leaf: store the per-VN vector
            vectors[dst] = inherited
            continue

        # union internal node: create both children (full/leaf-pushed)
        level = structure.level(dst) + 1
        dst_left = structure._new_node(level)
        vectors.append(None)
        structure._left[dst] = dst_left
        dst_right = structure._new_node(level)
        vectors.append(None)
        structure._right[dst] = dst_right

        if any_left:
            union_input_nodes += 1
            stack.append((lefts, dst_left, inherited))
        else:
            vectors[dst_left] = inherited.copy()
        if any_right:
            union_input_nodes += 1
            stack.append((rights, dst_right, inherited))
        else:
            vectors[dst_right] = inherited.copy()

    return MergedTrie(
        structure=structure,
        vectors=vectors,
        k=k,
        union_input_nodes=union_input_nodes,
        sum_input_nodes=sum_input_nodes,
    )
