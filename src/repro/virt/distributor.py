"""Packet distributor for the separate virtualization scheme.

In NV and VS deployments, packets must reach the lookup engine of
their own virtual network (paper Fig. 1, bottom).  Assumption 3 treats
the distributor's energy as negligible; this module makes that
assumption explicit and checkable — the distributor has a (small,
configurable) resource footprint and per-packet energy that default to
the paper's zero-cost idealization but can be enabled in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.device import ResourceUsage
from repro.units import nj_to_j

__all__ = ["BatchPartition", "Distributor"]


@dataclass(frozen=True, slots=True)
class BatchPartition:
    """Structure-of-arrays partition of one batch by VNID.

    One stable argsort of the VNIDs plus a ``bincount``/``cumsum``
    offset table replaces the old per-engine ``flatnonzero`` scan
    (O(n·k) passes over the batch): engine ``i``'s packets are the
    contiguous slice ``order[offsets[i]:offsets[i+1]]`` of the sorted
    batch, in arrival order (argsort stability), and a single scatter
    through ``order`` restores batch order on the way out.

    Attributes
    ----------
    order:
        Stable permutation sorting the batch by VNID: position ``j``
        of the sorted batch holds original index ``order[j]``.
    offsets:
        ``k + 1`` cumulative engine offsets into the sorted batch.
    """

    order: np.ndarray
    offsets: np.ndarray

    @property
    def k(self) -> int:
        """Number of engines partitioned over."""
        return len(self.offsets) - 1

    @property
    def n_packets(self) -> int:
        """Packets in the partitioned batch."""
        return len(self.order)

    def engine_slice(self, engine: int) -> slice:
        """Contiguous slice of the *sorted* batch bound for ``engine``."""
        return slice(int(self.offsets[engine]), int(self.offsets[engine + 1]))

    def engine_count(self, engine: int) -> int:
        """Packets bound for ``engine``."""
        return int(self.offsets[engine + 1] - self.offsets[engine])

    def engine_indices(self, engine: int) -> np.ndarray:
        """Original batch indices bound for ``engine``, arrival order.

        Equal to ``np.flatnonzero(vnids == engine)`` — the contract
        pinned by the routing-parity property tests.
        """
        return self.order[self.engine_slice(engine)]

    def gather(self, values: np.ndarray) -> np.ndarray:
        """Reorder per-packet ``values`` into VNID-sorted batch order."""
        return values[self.order]

    def scatter(self, sorted_values: np.ndarray, fill: int = 0) -> np.ndarray:
        """Scatter sorted-batch ``sorted_values`` back to arrival order.

        The inverse permutation applied in one NumPy scatter — the
        "single gather on the way out" of the SoA batch pipeline.
        """
        out = np.full(self.n_packets, fill, dtype=sorted_values.dtype)
        out[self.order] = sorted_values
        return out


@dataclass(frozen=True, slots=True)
class Distributor:
    """VNID-based demultiplexer in front of K engines.

    Attributes
    ----------
    k:
        Number of output engines.
    luts_per_port:
        Demux logic per engine port (0 = the paper's Assumption 3).
    energy_per_packet_nj:
        Switching energy per distributed packet (0 by default).
    """

    k: int
    luts_per_port: int = 0
    energy_per_packet_nj: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.luts_per_port < 0:
            raise ConfigurationError("luts_per_port must be non-negative")
        if self.energy_per_packet_nj < 0:
            raise ConfigurationError("energy_per_packet_nj must be non-negative")

    def resource_usage(self) -> ResourceUsage:
        """Fabric resources consumed by the demux tree."""
        return ResourceUsage(luts_logic=self.luts_per_port * self.k)

    def partition(self, vnids: np.ndarray) -> BatchPartition:
        """Partition one batch into contiguous per-engine slices.

        One stable argsort by VNID plus ``bincount``/``cumsum``
        offsets — a single O(n) pass regardless of ``k``, replacing
        the per-engine ``flatnonzero`` scan.  Within each engine the
        arrival order is preserved (stable sort), so the slices are
        index-for-index the old partition.
        """
        vnids = np.asarray(vnids, dtype=np.int64)
        if len(vnids) and (vnids.min() < 0 or vnids.max() >= self.k):
            raise ConfigurationError("vnid out of range for this distributor")
        # sort the narrowest key that holds k: NumPy's stable argsort
        # is an LSB radix sort for integers, so one byte of key means
        # one counting pass instead of eight (~5x on 100k packets)
        if self.k <= 1 << 8:
            sort_key = vnids.astype(np.uint8)
        elif self.k <= 1 << 16:
            sort_key = vnids.astype(np.uint16)
        else:
            sort_key = vnids
        order = np.argsort(sort_key, kind="stable")
        counts = np.bincount(vnids, minlength=self.k)
        offsets = np.empty(self.k + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        return BatchPartition(order=order, offsets=offsets)

    def route(self, vnids: np.ndarray) -> list[np.ndarray]:
        """Partition packet indices by VNID (index-array view).

        Returns a list of ``k`` index arrays: entry ``i`` holds the
        positions of the packets destined for engine ``i``, preserving
        arrival order within each engine.  Thin compatibility wrapper
        over :meth:`partition`; hot paths should consume the
        :class:`BatchPartition` directly and work on its contiguous
        slices instead of fancy-indexing per engine.
        """
        part = self.partition(vnids)
        return [part.engine_indices(i) for i in range(self.k)]

    def energy_j(self, n_packets: int) -> float:
        """Total distribution energy for ``n_packets`` packets."""
        if n_packets < 0:
            raise ConfigurationError("n_packets must be non-negative")
        return nj_to_j(n_packets * self.energy_per_packet_nj)
