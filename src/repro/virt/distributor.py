"""Packet distributor for the separate virtualization scheme.

In NV and VS deployments, packets must reach the lookup engine of
their own virtual network (paper Fig. 1, bottom).  Assumption 3 treats
the distributor's energy as negligible; this module makes that
assumption explicit and checkable — the distributor has a (small,
configurable) resource footprint and per-packet energy that default to
the paper's zero-cost idealization but can be enabled in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.device import ResourceUsage
from repro.units import nj_to_j

__all__ = ["Distributor"]


@dataclass(frozen=True, slots=True)
class Distributor:
    """VNID-based demultiplexer in front of K engines.

    Attributes
    ----------
    k:
        Number of output engines.
    luts_per_port:
        Demux logic per engine port (0 = the paper's Assumption 3).
    energy_per_packet_nj:
        Switching energy per distributed packet (0 by default).
    """

    k: int
    luts_per_port: int = 0
    energy_per_packet_nj: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.luts_per_port < 0:
            raise ConfigurationError("luts_per_port must be non-negative")
        if self.energy_per_packet_nj < 0:
            raise ConfigurationError("energy_per_packet_nj must be non-negative")

    def resource_usage(self) -> ResourceUsage:
        """Fabric resources consumed by the demux tree."""
        return ResourceUsage(luts_logic=self.luts_per_port * self.k)

    def route(self, vnids: np.ndarray) -> list[np.ndarray]:
        """Partition packet indices by VNID.

        Returns a list of ``k`` index arrays: entry ``i`` holds the
        positions of the packets destined for engine ``i``, preserving
        arrival order within each engine.
        """
        vnids = np.asarray(vnids, dtype=np.int64)
        if len(vnids) and (vnids.min() < 0 or vnids.max() >= self.k):
            raise ConfigurationError("vnid out of range for this distributor")
        return [np.flatnonzero(vnids == i) for i in range(self.k)]

    def energy_j(self, n_packets: int) -> float:
        """Total distribution energy for ``n_packets`` packets."""
        if n_packets < 0:
            raise ConfigurationError("n_packets must be non-negative")
        return nj_to_j(n_packets * self.energy_per_packet_nj)
