"""Queueing latency at the lookup engine's input.

Virtualization must be "transparent to the user ... ensuring the
throughput and latency requirements guaranteed originally" (paper
Section I).  The pipeline latency itself is fixed (N+1 cycles), but a
*shared* engine also queues: packets of all K networks contend for the
merged engine's single admission slot, while the separate scheme
queues per engine at K-times-lower arrival rate.

The lookup engine is a fixed-service-time server — one lookup per
cycle — so the M/D/1 model applies: with utilization ρ and service
time s, the mean wait is

    W = ρ · s / (2 · (1 − ρ))

This module evaluates that per scheme and exposes the latency-vs-load
curves the paper's transparency requirement implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import lookup_latency_ns
from repro.errors import CapacityError, ConfigurationError
from repro.units import mhz_to_hz, s_to_ns

__all__ = [
    "md1_wait_ns",
    "LatencyReport",
    "scheme_latency_ns",
    "degraded_latency_ns",
    "simulate_md1_waits",
    "QueueValidation",
    "validate_md1",
]


def md1_wait_ns(utilization: float, frequency_mhz: float) -> float:
    """Mean M/D/1 queueing wait before a one-cycle server, in ns.

    ``utilization`` is the offered load as a fraction of the engine's
    line rate; at ρ → 1 the wait diverges (the engine saturates).
    """
    if not 0.0 <= utilization < 1.0:
        raise CapacityError(
            f"utilization must be in [0, 1) for a stable queue, got {utilization}"
        )
    if frequency_mhz <= 0:
        raise ConfigurationError("frequency must be positive")
    service_ns = s_to_ns(1.0 / mhz_to_hz(frequency_mhz))  # one cycle
    return utilization * service_ns / (2.0 * (1.0 - utilization))


@dataclass(frozen=True)
class LatencyReport:
    """Mean per-packet latency decomposition for one scheme."""

    scheme_label: str
    frequency_mhz: float
    pipeline_ns: float
    queueing_ns: float

    @property
    def total_ns(self) -> float:
        """Mean end-to-end lookup latency."""
        return self.pipeline_ns + self.queueing_ns


def scheme_latency_ns(
    scheme_label: str,
    aggregate_load_gbps: float,
    engine_capacity_gbps: float,
    n_engines: int,
    frequency_mhz: float,
    n_stages: int = 28,
) -> LatencyReport:
    """Latency of a scheme serving ``aggregate_load_gbps``.

    The aggregate load splits evenly over ``n_engines`` (1 for the
    merged scheme, K for NV/VS); each engine is an M/D/1 server at
    the resulting utilization.
    """
    if aggregate_load_gbps < 0 or engine_capacity_gbps <= 0:
        raise ConfigurationError("loads and capacities must be positive")
    if n_engines < 1:
        raise ConfigurationError("n_engines must be >= 1")
    per_engine = aggregate_load_gbps / n_engines
    utilization = per_engine / engine_capacity_gbps
    if utilization >= 1.0:
        raise CapacityError(
            f"{scheme_label}: per-engine load {per_engine:.1f} Gbps saturates "
            f"the {engine_capacity_gbps:.1f} Gbps engine"
        )
    return LatencyReport(
        scheme_label=scheme_label,
        frequency_mhz=frequency_mhz,
        pipeline_ns=lookup_latency_ns(frequency_mhz, n_stages),
        queueing_ns=md1_wait_ns(utilization, frequency_mhz),
    )


def degraded_latency_ns(
    scheme_label: str,
    utilizations: np.ndarray,
    frequencies_mhz: np.ndarray,
    load_weights: np.ndarray,
    n_stages: int = 28,
) -> LatencyReport:
    """Admitted-load-weighted latency of a *heterogeneously* loaded scheme.

    Where :func:`scheme_latency_ns` assumes every engine sees the same
    utilization at the same clock, a fault (engine stall, write storm)
    breaks that symmetry: each engine now runs its own M/D/1 queue at
    its own effective clock.  The mean admitted packet's latency is the
    per-engine latency weighted by each engine's share of the admitted
    load.

    Parameters
    ----------
    scheme_label:
        Scheme name carried into the report.
    utilizations:
        Per-engine M/D/1 utilization in [0, 1) — *after* admission
        shedding, so always stable.
    frequencies_mhz:
        Per-engine effective clock; an offline engine may carry 0 but
        must then also carry 0 weight.
    load_weights:
        Per-engine admitted lookup counts (or any proportional
        measure).  Engines with zero weight serve nothing and are
        excluded; if every weight is zero (the whole batch was shed)
        the report degenerates to zero latency — nothing was admitted,
        so no admitted packet has a latency.
    n_stages:
        Pipeline depth of every engine.
    """
    utilizations = np.asarray(utilizations, dtype=float)
    frequencies_mhz = np.asarray(frequencies_mhz, dtype=float)
    load_weights = np.asarray(load_weights, dtype=float)
    if not utilizations.shape == frequencies_mhz.shape == load_weights.shape:
        raise ConfigurationError(
            "utilizations, frequencies and weights must have the same shape"
        )
    if utilizations.ndim != 1 or len(utilizations) == 0:
        raise ConfigurationError("need at least one engine")
    if (load_weights < 0).any():
        raise ConfigurationError("load weights must be non-negative")
    total = load_weights.sum()
    if total == 0:
        return LatencyReport(
            scheme_label=scheme_label,
            frequency_mhz=float(frequencies_mhz.max()),
            pipeline_ns=0.0,
            queueing_ns=0.0,
        )
    # vectorized over engines — this runs once per served batch under
    # faults, so the per-engine Python loop it replaces was hot-path
    # work.  Error semantics match the loop exactly: zero-weight
    # engines are excluded *before* any validation, so an offline
    # engine may carry a zero (or bogus) clock or utilization as long
    # as it serves nothing, and only loaded engines are checked.
    served = load_weights > 0
    u = utilizations[served]
    f = frequencies_mhz[served]
    if (f <= 0).any():
        raise ConfigurationError(
            "an engine with admitted load must have a positive clock"
        )
    if ((u < 0.0) | (u >= 1.0)).any():
        bad = float(u[(u < 0.0) | (u >= 1.0)][0])
        raise CapacityError(
            f"utilization must be in [0, 1) for a stable queue, got {bad}"
        )
    shares = load_weights[served] / total
    # same expressions as lookup_latency_ns / md1_wait_ns, element-wise
    service_ns = s_to_ns(1.0 / mhz_to_hz(f))  # one cycle per lookup
    pipeline = shares * s_to_ns((n_stages + 1) / mhz_to_hz(f))
    queueing = shares * (u * service_ns / (2.0 * (1.0 - u)))
    return LatencyReport(
        scheme_label=scheme_label,
        frequency_mhz=float(frequencies_mhz.max()),
        pipeline_ns=float(pipeline.sum()),
        queueing_ns=float(queueing.sum()),
    )


def simulate_md1_waits(
    utilization: float,
    frequency_mhz: float,
    n_arrivals: int,
    seed: int,
) -> np.ndarray:
    """Measured per-packet M/D/1 queueing waits via the Lindley recursion.

    Where :func:`md1_wait_ns` gives the *model's* steady-state mean,
    this simulates the queue itself: Poisson arrivals at rate
    ``utilization × frequency`` against a deterministic one-cycle
    server, through the Lindley recursion

        W_k = max(0, W_{k-1} + S − A_k)

    with service time ``S = 1/f`` and exponential inter-arrival gaps
    ``A_k``.  Vectorized as the reflected random walk
    ``W_k = C_k − min_{j≤k} C_j`` over ``C = cumsum(S − A)``, so a
    shard can simulate tens of thousands of arrivals per batch at
    numpy speed.  Deterministic in ``seed`` — the sharded tier derives
    one seed per (shard, batch), keeping the whole measured-queue
    surface replayable.

    Returns the per-arrival waits in nanoseconds (length
    ``n_arrivals``); their mean is the *observed* counterpart of
    :func:`md1_wait_ns` that :func:`validate_md1` compares against.
    """
    if not 0.0 <= utilization < 1.0:
        raise CapacityError(
            f"utilization must be in [0, 1) for a stable queue, got {utilization}"
        )
    if frequency_mhz <= 0:
        raise ConfigurationError("frequency must be positive")
    if n_arrivals < 1:
        raise ConfigurationError(f"n_arrivals must be >= 1, got {n_arrivals}")
    service_ns = s_to_ns(1.0 / mhz_to_hz(frequency_mhz))  # one cycle
    if utilization <= 0.0:
        return np.zeros(n_arrivals)
    rng = np.random.default_rng(seed)
    # inter-arrival gaps ~ Exp(rate), rate = utilization / service time
    gaps_ns = rng.exponential(service_ns / utilization, size=n_arrivals)
    steps = service_ns - gaps_ns
    walk = np.concatenate(([0.0], np.cumsum(steps)))
    waits = walk - np.minimum.accumulate(walk)
    return waits[1:]


@dataclass(frozen=True)
class QueueValidation:
    """Model-vs-measured comparison of one engine queue's mean wait.

    The sharded tier publishes one of these per shard per batch: the
    M/D/1 *predicted* mean wait at the shard's utilization, the
    *observed* mean wait of the simulated (or measured) queue, and the
    relative error between them — the quantity the acceptance gate
    bounds at 15% for ρ ≤ 0.8.
    """

    utilization: float
    predicted_wait_ns: float
    observed_wait_ns: float

    @property
    def relative_error(self) -> float:
        """``|observed − predicted| / predicted`` (0 when both are 0)."""
        if self.predicted_wait_ns <= 0.0:
            return 0.0 if self.observed_wait_ns <= 0.0 else float("inf")
        return abs(self.observed_wait_ns - self.predicted_wait_ns) / (
            self.predicted_wait_ns
        )


def validate_md1(
    utilization: float,
    frequency_mhz: float,
    observed_wait_ns: float,
) -> QueueValidation:
    """Score an observed mean queue wait against the M/D/1 prediction."""
    return QueueValidation(
        utilization=utilization,
        predicted_wait_ns=md1_wait_ns(utilization, frequency_mhz),
        observed_wait_ns=float(observed_wait_ns),
    )
