"""Virtual network identifier (VNID) handling.

Packets entering a virtualized router carry a VNID that selects the
routing table (paper Section IV-C).  In the merged scheme the VNID
indexes the per-leaf NHI vector; in the separate scheme it steers the
distributor.  These helpers model the VNID header field: its width and
its packing into the packet metadata word.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["vnid_bits", "encode_vnid", "decode_vnid"]


def vnid_bits(k: int) -> int:
    """Header bits needed to address ``k`` virtual networks."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return max(1, (k - 1).bit_length())


def encode_vnid(address: int, vnid: int, k: int) -> int:
    """Pack ``(vnid, address)`` into one metadata word.

    The VNID occupies the bits above the 32-bit address, mirroring the
    tagged internal bus of the merged engine.
    """
    if not 0 <= address <= 0xFFFFFFFF:
        raise ConfigurationError(f"address out of range: {address:#x}")
    if not 0 <= vnid < k:
        raise ConfigurationError(f"vnid {vnid} out of range 0..{k - 1}")
    return (vnid << 32) | address


def decode_vnid(word: int, k: int) -> tuple[int, int]:
    """Unpack a metadata word into ``(address, vnid)``."""
    if word < 0:
        raise ConfigurationError("metadata word must be non-negative")
    address = word & 0xFFFFFFFF
    vnid = word >> 32
    if vnid >= k:
        raise ConfigurationError(f"decoded vnid {vnid} out of range 0..{k - 1}")
    return address, vnid
