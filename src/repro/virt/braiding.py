"""Trie braiding: overlap-maximizing merge (paper reference [17]).

Plain merging (:mod:`repro.virt.merged`) shares a node only when the
same root path exists in several tries.  *Braiding* (Song, Kodialam,
Hao, Lakshman — "Building scalable virtual routers with trie
braiding", INFOCOM 2010) adds one twist bit per (node, virtual
network): a twisted node swaps its 0/1 children when a packet of that
VN traverses it, letting structurally different tries align onto the
same shape and raising the merging efficiency α beyond what raw
structure gives.

The builder here is the standard greedy form of the algorithm: tries
are folded into the shared shape one after another, and each mapped
node picks the twist that pairs its subtrees with the most similar
committed subtrees (subtree node counts as the similarity proxy —
exact DP braiding improves on this by a few percent at much higher
build cost).  Lookups consult the per-VN twist bitmap along the path,
exactly as the braided hardware lookup would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MergeError
from repro.iplookup.rib import NO_ROUTE
from repro.iplookup.trie import NONE, TrieStats, UnibitTrie

__all__ = ["BraidedTrie", "braid_tries"]


def _subtree_sizes(trie: UnibitTrie) -> list[int]:
    """Node count of every subtree (index-aligned with trie nodes)."""
    sizes = [0] * len(trie._left)
    # children have higher indices is NOT guaranteed after removals, so
    # compute by explicit postorder
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        node, expanded = stack.pop()
        left, right = trie.left(node), trie.right(node)
        if not expanded:
            stack.append((node, True))
            if left != NONE:
                stack.append((left, False))
            if right != NONE:
                stack.append((right, False))
        else:
            size = 1
            if left != NONE:
                size += sizes[left]
            if right != NONE:
                size += sizes[right]
            sizes[node] = size
    return sizes


class BraidedTrie:
    """Braided union of K tries with per-(node, VN) twist bits."""

    __slots__ = ("structure", "k", "_vectors", "_twists", "union_input_nodes", "sum_input_nodes")

    def __init__(
        self,
        structure: UnibitTrie,
        vectors: list[np.ndarray | None],
        twists: list[int],
        k: int,
        union_input_nodes: int,
        sum_input_nodes: int,
    ):
        if len(vectors) != structure.num_nodes or len(twists) != structure.num_nodes:
            raise MergeError("vectors and twists must align with the structure")
        self.structure = structure
        self.k = k
        self._vectors = vectors
        self._twists = twists
        self.union_input_nodes = union_input_nodes
        self.sum_input_nodes = sum_input_nodes

    @property
    def num_nodes(self) -> int:
        """Nodes in the braided (leaf-pushed) shape."""
        return self.structure.num_nodes

    @property
    def global_alpha(self) -> float:
        """Common/total nodes over the braided union (Assumption 4)."""
        if self.sum_input_nodes == 0:
            return 0.0
        return (self.sum_input_nodes - self.union_input_nodes) / self.sum_input_nodes

    @property
    def pairwise_alpha(self) -> float:
        """Model-parameter α achieved after braiding."""
        if self.k < 2:
            return 1.0
        return min(1.0, self.global_alpha * self.k / (self.k - 1))

    def twist_bits_memory(self) -> int:
        """Extra memory the twist bitmaps cost (1 bit per node per VN)."""
        return self.structure.num_nodes * self.k

    def stats(self) -> TrieStats:
        """Structural statistics of the braided shape."""
        return self.structure.stats()

    def lookup(self, address: int, vnid: int) -> int:
        """LPM for ``address`` in VN ``vnid``, honoring twist bits."""
        if not 0 <= vnid < self.k:
            raise MergeError(f"vnid {vnid} out of range 0..{self.k - 1}")
        trie = self.structure
        node = 0
        level = 0
        mask = 1 << vnid
        while not trie.is_leaf(node):
            bit = (address >> (31 - level)) & 1
            if self._twists[node] & mask:
                bit ^= 1
            node = trie.right(node) if bit else trie.left(node)
            level += 1
        vector = self._vectors[node]
        return int(vector[vnid])

    def lookup_batch(self, addresses: np.ndarray, vnids: np.ndarray) -> np.ndarray:
        """Vectorized braided lookup over (address, vnid) pairs."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        vnids = np.asarray(vnids, dtype=np.int64)
        if addresses.shape != vnids.shape:
            raise MergeError("addresses and vnids must have the same shape")
        return np.array(
            [self.lookup(int(a), int(v)) for a, v in zip(addresses, vnids)],
            dtype=np.int64,
        )


def braid_tries(tries: list[UnibitTrie]) -> BraidedTrie:
    """Greedily braid K tries into one shape with per-VN twist bits."""
    if not tries:
        raise MergeError("need at least one trie to braid")
    k = len(tries)
    sizes = [_subtree_sizes(t) for t in tries]

    structure = UnibitTrie()
    vectors: list[np.ndarray | None] = [None]
    twists: list[int] = [0]
    union_input_nodes = 1
    sum_input_nodes = sum(t.num_nodes for t in tries)

    roots = np.zeros(k, dtype=np.int64)
    inherited0 = np.array([t.nhi(0) for t in tries], dtype=np.int64)
    # each stack entry: (per-trie source node or NONE, dst shape node, inherited NHI)
    stack: list[tuple[np.ndarray, int, np.ndarray]] = [(roots, 0, inherited0)]

    while stack:
        src, dst, inherited = stack.pop()
        inherited = inherited.copy()
        # committed subtree weights for this shape node's two sides
        left_weight = 0
        right_weight = 0
        lefts = np.full(k, NONE, dtype=np.int64)
        rights = np.full(k, NONE, dtype=np.int64)
        any_child = False
        for i, trie in enumerate(tries):
            node = int(src[i])
            if node == NONE:
                continue
            nhi = trie.nhi(node)
            if nhi != NO_ROUTE:
                inherited[i] = nhi
            child_l, child_r = trie.left(node), trie.right(node)
            if child_l == NONE and child_r == NONE:
                continue
            any_child = True
            size_l = sizes[i][child_l] if child_l != NONE else 0
            size_r = sizes[i][child_r] if child_r != NONE else 0
            # greedy twist: align this trie's heavier side with the
            # heavier committed side
            plain_cost = abs(size_l - left_weight) + abs(size_r - right_weight)
            twist_cost = abs(size_r - left_weight) + abs(size_l - right_weight)
            if twist_cost < plain_cost:
                twists[dst] |= 1 << i
                child_l, child_r = child_r, child_l
                size_l, size_r = size_r, size_l
            lefts[i] = child_l
            rights[i] = child_r
            left_weight += size_l
            right_weight += size_r

        if not any_child:
            vectors[dst] = inherited
            continue

        level = structure.level(dst) + 1
        dst_left = structure._new_node(level)
        vectors.append(None)
        twists.append(0)
        structure._left[dst] = dst_left
        dst_right = structure._new_node(level)
        vectors.append(None)
        twists.append(0)
        structure._right[dst] = dst_right

        if (lefts != NONE).any():
            union_input_nodes += 1
            stack.append((lefts, dst_left, inherited))
        else:
            vectors[dst_left] = inherited.copy()
        if (rights != NONE).any():
            union_input_nodes += 1
            stack.append((rights, dst_right, inherited))
        else:
            vectors[dst_right] = inherited.copy()

    return BraidedTrie(
        structure=structure,
        vectors=vectors,
        twists=twists,
        k=k,
        union_input_nodes=union_input_nodes,
        sum_input_nodes=sum_input_nodes,
    )
