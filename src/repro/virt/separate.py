"""Separate router virtualization: K engines space-sharing one device.

The virtualized-separate scheme (paper Section IV-B) instantiates one
lookup pipeline per virtual network on a single FPGA, with a VNID
distributor in front (Fig. 1 bottom).  Between engines there is no
resource sharing except the fabric itself; each engine can be idled
independently — the fine-grained power control the paper highlights.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, MergeError
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import (
    DEFAULT_NODE_FORMAT,
    NodeFormat,
    StageMemoryMap,
    map_trie_to_stages,
)
from repro.iplookup.pipeline import LookupPipeline
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.virt.distributor import Distributor

__all__ = ["SeparateVirtualRouter"]


class SeparateVirtualRouter:
    """K independent lookup pipelines behind a VNID distributor.

    Parameters
    ----------
    tables:
        One routing table per virtual network.
    n_stages:
        Pipeline depth of every engine.
    node_format:
        Stage-memory node encoding.
    leaf_pushed:
        Build engines over leaf-pushed tries (the paper's default
        architecture).
    """

    def __init__(
        self,
        tables: list[RoutingTable],
        n_stages: int = 28,
        node_format: NodeFormat = DEFAULT_NODE_FORMAT,
        *,
        leaf_pushed: bool = True,
    ):
        if not tables:
            raise ConfigurationError("need at least one routing table")
        self.k = len(tables)
        self.n_stages = n_stages
        self.node_format = node_format
        self.tries: list[UnibitTrie] = []
        for table in tables:
            trie = UnibitTrie(table)
            if leaf_pushed:
                trie = leaf_push(trie)
            self.tries.append(trie)
        self.pipelines = [LookupPipeline(trie, n_stages) for trie in self.tries]
        self.distributor = Distributor(k=self.k)

    def stage_maps(self) -> list[StageMemoryMap]:
        """Per-engine stage memory maps (the ``M_{i,j}`` of Eq. 3/4)."""
        return [
            map_trie_to_stages(trie.stats(), self.n_stages, self.node_format)
            for trie in self.tries
        ]

    def total_memory_bits(self) -> int:
        """Memory across all engines (the separate series of Fig. 4)."""
        return sum(m.total_bits for m in self.stage_maps())

    def lookup(self, address: int, vnid: int) -> int:
        """LPM for ``address`` within virtual network ``vnid``."""
        if not 0 <= vnid < self.k:
            raise MergeError(f"vnid {vnid} out of range 0..{self.k - 1}")
        return self.tries[vnid].lookup(address)

    def lookup_batch(self, addresses: np.ndarray, vnids: np.ndarray) -> np.ndarray:
        """Distribute packets to engines and gather their results.

        Structure-of-arrays routing: one stable sort by VNID, each
        engine answers its contiguous slice, one scatter back through
        the inverse permutation (see
        :meth:`repro.virt.distributor.Distributor.partition`).
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        vnids = np.asarray(vnids, dtype=np.int64)
        if addresses.shape != vnids.shape:
            raise ConfigurationError("addresses and vnids must have the same shape")
        part = self.distributor.partition(vnids)
        sorted_addresses = part.gather(addresses)
        sorted_results = np.empty(len(addresses), dtype=np.int64)
        for vn in range(self.k):
            sl = part.engine_slice(vn)
            if sl.stop > sl.start:
                sorted_results[sl] = self.tries[vn].lookup_batch(sorted_addresses[sl])
        return part.scatter(sorted_results)

    def engine_utilizations(self, vnids: np.ndarray) -> np.ndarray:
        """Observed per-engine load fractions from a packet stream.

        With Assumption 1 traffic these converge to µᵢ = 1/K.
        """
        vnids = np.asarray(vnids, dtype=np.int64)
        if len(vnids) == 0:
            return np.zeros(self.k)
        counts = np.bincount(vnids, minlength=self.k).astype(float)
        return counts / len(vnids)
