"""Analysis beyond the paper's figures: ablations, crossovers, advice.

* :mod:`repro.analysis.sweeps` — the A1–A6 ablations listed in
  DESIGN.md §4 (utilization skew, α sensitivity, frequency scaling,
  table-size scaling, clock gating, leaf pushing).
* :mod:`repro.analysis.crossover` — locate where one scheme overtakes
  another along the K axis.
* :mod:`repro.analysis.advisor` — rank deployment schemes for a given
  consolidation problem under resource/throughput/power constraints.
"""

from repro.analysis.sweeps import (
    alpha_sweep,
    duty_cycle_sweep,
    frequency_sweep,
    leafpush_ablation,
    table_size_sweep,
    utilization_sweep,
)
from repro.analysis.crossover import find_crossover, scheme_crossover_k
from repro.analysis.advisor import Recommendation, recommend_scheme
from repro.analysis.governor import OperatingPoint, pareto_frontier, plan_operating_point
from repro.analysis.study import ConsolidationStudy, SchemeAssessment, run_study

__all__ = [
    "OperatingPoint",
    "pareto_frontier",
    "plan_operating_point",
    "ConsolidationStudy",
    "SchemeAssessment",
    "run_study",
    "alpha_sweep",
    "duty_cycle_sweep",
    "frequency_sweep",
    "leafpush_ablation",
    "table_size_sweep",
    "utilization_sweep",
    "find_crossover",
    "scheme_crossover_k",
    "Recommendation",
    "recommend_scheme",
]
