"""Ablation sweeps over the design space (DESIGN.md §4, A1–A11).

Each sweep returns an :class:`~repro.reporting.result.ExperimentResult`
so the benchmark harness renders them exactly like the paper figures.
Every sweep is registered with the experiment engine under its
``ablation_*`` id and the ``ablation`` tag, so ``repro-experiments
--tag ablation`` regenerates the whole design-space study (cached,
parallel) alongside the paper artifacts.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.metrics import mw_per_gbps, throughput_gbps
from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map, merged_stage_map
from repro.errors import ResourceExhaustedError, TimingError
from repro.experiments.common import base_trie_stats, evaluate_scenario, paper_table_config
from repro.fpga.catalog import XC6VLX760
from repro.fpga.clocking import ClockGating
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import (
    DEFAULT_NODE_FORMAT,
    PAPER_PIPELINE_STAGES,
    map_trie_to_stages,
)
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import UnibitTrie
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.units import bits_to_mb
from repro.virt.schemes import Scheme
from repro.virt.traffic import zipf_utilization

__all__ = [
    "utilization_sweep",
    "alpha_sweep",
    "frequency_sweep",
    "table_size_sweep",
    "duty_cycle_sweep",
    "leafpush_ablation",
    "stride_sweep",
    "temperature_sweep",
    "heterogeneity_sweep",
    "structure_comparison",
    "balancing_sweep",
]


@register("ablation_utilization", tags=("ablation",))
def utilization_sweep(
    k: int = 8,
    zipf_exponents: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A1 — relax Assumption 1: Zipf-skewed utilization.

    Two findings the sweep demonstrates:

    * total VS power is *invariant* to the skew — Eq. 4's Σµᵢ·(engine
      dynamic) telescopes when tables are structurally identical
      (Assumption 2), so uniformity is not load-bearing for power;
    * the *sustainable aggregate load* is not invariant — the hottest
      engine saturates first, capping aggregate offered load at
      ``engine capacity / max µᵢ``.
    """
    exps = tuple(zipf_exponents)
    result = ExperimentResult(
        experiment_id="ablation_utilization",
        title=f"A1: Zipf-skewed utilization, VS K={k}, grade {grade}",
        x_label="zipf_s",
        x_values=np.asarray(exps, dtype=float),
    )
    totals = []
    sustainable = []
    for s in exps:
        mu = zipf_utilization(k, s)
        config = ScenarioConfig(
            scheme=Scheme.VS, k=k, grade=grade, utilizations=tuple(mu)
        )
        r = evaluate_scenario(config)
        totals.append(r.model.total_w)
        engine_capacity = throughput_gbps(r.frequency_mhz, 1)
        sustainable.append(engine_capacity / float(mu.max()))
    result.add_series("model_total_W", totals)
    result.add_series("sustainable_aggregate_Gbps", sustainable)
    spread = max(totals) - min(totals)
    result.add_note(
        f"model power is skew-invariant under Assumption 2: spread {spread:.4f} W"
    )
    result.add_note("sustainable load drops as the hottest VN saturates its engine")
    return result


@register("ablation_alpha", tags=("ablation",))
def alpha_sweep(
    ks: Sequence[int] = (2, 8, 15),
    alphas: Sequence[float] = tuple(np.linspace(0.0, 1.0, 11)),
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A2 — merged-scheme sensitivity to the merging efficiency α."""
    alphas = tuple(float(a) for a in alphas)
    result = ExperimentResult(
        experiment_id="ablation_alpha",
        title=f"A2: merged power vs merging efficiency, grade {grade}",
        x_label="alpha",
        x_values=np.asarray(alphas, dtype=float),
    )
    for k in ks:
        totals = []
        memory = []
        for alpha in alphas:
            config = ScenarioConfig(scheme=Scheme.VM, k=k, grade=grade, alpha=alpha)
            try:
                r = evaluate_scenario(config)
                totals.append(r.model.total_w)
                memory.append(bits_to_mb(r.resources.total_memory_bits))
            except (ResourceExhaustedError, TimingError):
                totals.append(float("nan"))
                memory.append(float("nan"))
        result.add_series(f"total_W K={k}", totals)
        result.add_series(f"memory_Mb K={k}", memory)
    result.add_note("power and memory fall monotonically as overlap grows")
    return result


@register("ablation_frequency", tags=("ablation",))
def frequency_sweep(
    frequencies_mhz: Sequence[float] = (100.0, 150.0, 200.0, 250.0, 290.0),
    k: int = 8,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A3 — power/throughput tradeoff when clocking below fmax.

    Dynamic power is linear in f but static power is not amortized at
    low clocks, so mW/Gbps *improves* with frequency — the reason the
    paper runs everything at the achieved fmax.
    """
    freqs = tuple(frequencies_mhz)
    result = ExperimentResult(
        experiment_id="ablation_frequency",
        title=f"A3: VS K={k} power vs operating frequency, grade {grade}",
        x_label="frequency_MHz",
        x_values=np.asarray(freqs, dtype=float),
    )
    totals = []
    efficiency = []
    for f in freqs:
        config = ScenarioConfig(scheme=Scheme.VS, k=k, grade=grade, frequency_mhz=f)
        r = evaluate_scenario(config)
        totals.append(r.model.total_w)
        efficiency.append(r.model_mw_per_gbps)
    result.add_series("model_total_W", totals)
    result.add_series("model_mW_per_Gbps", efficiency)
    result.add_note("static power dominates: efficiency improves with clock rate")
    return result


@register("ablation_table_size", tags=("ablation",))
def table_size_sweep(
    sizes: Sequence[int] = (1000, 3725, 10000, 50000),
    k: int = 8,
    alpha: float = 0.8,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A4 — scaling from small edge tables towards core-size tables.

    Assumption 2 uses a 10 000-prefix bound as the worst case; this
    sweep shows where each scheme hits the device's BRAM wall.
    """
    sizes = tuple(sizes)
    result = ExperimentResult(
        experiment_id="ablation_table_size",
        title=f"A4: memory and fit vs table size, K={k}, grade {grade}",
        x_label="prefixes",
        x_values=np.asarray(sizes, dtype=float),
    )
    sep_memory = []
    merged_memory = []
    sep_fits = []
    merged_fits = []
    for size in sizes:
        table_cfg = SyntheticTableConfig(n_prefixes=size, seed=99)
        stats = base_trie_stats(table_cfg)
        n_stages = max(PAPER_PIPELINE_STAGES, stats.depth)
        base = engine_stage_map(stats, n_stages)
        merged = merged_stage_map(stats, k, alpha, n_stages)
        sep_memory.append(k * bits_to_mb(base.total_bits))
        merged_memory.append(bits_to_mb(merged.total_bits))
        sep_fits.append(float(k * base.total_bits <= XC6VLX760.bram_bits))
        merged_fits.append(float(merged.total_bits <= XC6VLX760.bram_bits))
    result.add_series("separate_memory_Mb", sep_memory)
    result.add_series("merged_memory_Mb", merged_memory)
    result.add_series("separate_fits", sep_fits)
    result.add_series("merged_fits", merged_fits)
    result.add_note("fit columns: 1 = lookup memory within the LX760's 26 Mb of BRAM")
    return result


@register("ablation_duty_cycle", tags=("ablation",))
def duty_cycle_sweep(
    duty_cycles: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 0.75, 1.0),
    k: int = 8,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A5 — clock gating: dynamic power vs offered duty cycle.

    With the paper's gating (Section IV) dynamic power tracks the duty
    cycle exactly; without gating, idle-but-clocked resources keep a
    residual activity, and the sweep quantifies the gap.
    """
    duties = tuple(duty_cycles)
    stats = base_trie_stats(paper_table_config())
    base_map = engine_stage_map(stats, PAPER_PIPELINE_STAGES)
    maps = [base_map] * k
    mu = np.full(k, 1.0 / k)
    f = 300.0
    result = ExperimentResult(
        experiment_id="ablation_duty_cycle",
        title=f"A5: VS K={k} dynamic power vs duty cycle, grade {grade}",
        x_label="duty_cycle",
        x_values=np.asarray(duties, dtype=float),
    )
    gated_model = AnalyticalPowerModel(grade)
    ungated_model = AnalyticalPowerModel(
        grade, clock_gating=ClockGating(gate_logic=False, gate_memory=False)
    )
    gated = [gated_model.power_vs(maps, f, mu, d).dynamic_w for d in duties]
    ungated = [ungated_model.power_vs(maps, f, mu, d).dynamic_w for d in duties]
    result.add_series("gated_dynamic_W", gated)
    result.add_series("ungated_dynamic_W", ungated)
    saving = (1 - gated[0] / ungated[0]) * 100 if ungated[0] else 0.0
    result.add_note(
        f"at {duties[0]:.0%} duty the paper's gating saves {saving:.0f}% of dynamic power"
    )
    return result


@register("ablation_leafpush", tags=("ablation",))
def leafpush_ablation(
    config: SyntheticTableConfig | None = None,
) -> ExperimentResult:
    """A6 — leaf pushing: node count vs per-node width tradeoff.

    A plain trie stores fewer nodes but every node must budget an NHI
    field next to its pointers; a leaf-pushed trie stores more nodes
    but splits cleanly into pointer-only and NHI-only nodes (and drops
    the per-stage best-match register chain in hardware).
    """
    config = config or paper_table_config()
    table = generate_table(config)
    plain = UnibitTrie(table)
    pushed = leaf_push(plain)
    fmt = DEFAULT_NODE_FORMAT

    # plain trie: every node carries pointers + an inline NHI slot
    plain_stats = plain.stats()
    plain_node_bits = fmt.internal_node_bits() + fmt.nhi_bits
    plain_bits = plain_stats.total_nodes * plain_node_bits
    pushed_map = map_trie_to_stages(
        pushed.stats(), max(PAPER_PIPELINE_STAGES, pushed.stats().depth), fmt
    )

    result = ExperimentResult(
        experiment_id="ablation_leafpush",
        title="A6: plain vs leaf-pushed trie memory",
        x_label="row",
        x_values=np.asarray([0.0]),
    )
    result.add_series("plain_nodes", [plain_stats.total_nodes])
    result.add_series("pushed_nodes", [pushed.num_nodes])
    result.add_series("plain_memory_Mb", [bits_to_mb(plain_bits)])
    result.add_series("pushed_memory_Mb", [bits_to_mb(pushed_map.total_bits)])
    ratio = pushed_map.total_bits / plain_bits
    result.add_note(
        f"leaf pushing: {pushed.num_nodes / plain_stats.total_nodes:.2f}x nodes, "
        f"{ratio:.2f}x memory (narrower nodes offset the count increase)"
    )
    return result


@register("ablation_stride", tags=("ablation",))
def stride_sweep(
    strides: Sequence[int] = (1, 2, 4),
    grade: SpeedGrade = SpeedGrade.G2,
    config: SyntheticTableConfig | None = None,
) -> ExperimentResult:
    """A7 — multi-bit strides: pipeline depth vs memory power.

    The paper's related work ([7], [8] Jiang & Prasanna) reduces power
    by bounding pipeline depth; a stride-``s`` trie does exactly that
    (⌈32/s⌉ levels) at the cost of prefix-expansion memory.  The sweep
    evaluates one engine's logic power (∝ stages) against BRAM power
    (∝ expanded memory) to expose the crossover.
    """
    config = config or SyntheticTableConfig(n_prefixes=1000, seed=13)
    table = generate_table(config)
    strides = tuple(strides)
    model = AnalyticalPowerModel(grade)
    f = 250.0
    result = ExperimentResult(
        experiment_id="ablation_stride",
        title=f"A7: multi-bit stride vs power, grade {grade} (one engine)",
        x_label="stride",
        x_values=np.asarray(strides, dtype=float),
    )
    stages_series = []
    memory_mb = []
    logic_w = []
    bram_w = []
    total_w = []
    from repro.iplookup.multibit import MultibitTrie

    for stride in strides:
        if stride == 1:
            trie = leaf_push(UnibitTrie(table))
            stats = trie.stats()
            n_stages = stats.depth
            stage_bits = map_trie_to_stages(stats, n_stages).bits_per_stage
        else:
            mb = MultibitTrie(table, stride=stride)
            stats_mb = mb.stats()
            n_stages = mb.pipeline_stages()
            entry_bits = DEFAULT_NODE_FORMAT.pointer_bits + 2
            stage_bits = np.zeros(n_stages, dtype=np.int64)
            for level, count in enumerate(stats_mb.nodes_per_level):
                stage_bits[level] = count * stats_mb.entries_per_node * entry_bits
        logic = n_stages * model.stage_logic_power_w(f)
        memory = sum(
            model.stage_memory_power_w(int(bits), f) for bits in stage_bits
        )
        stages_series.append(n_stages)
        memory_mb.append(bits_to_mb(int(stage_bits.sum())))
        logic_w.append(logic)
        bram_w.append(memory)
        total_w.append(logic + memory)
    result.add_series("pipeline_stages", stages_series)
    result.add_series("memory_Mb", memory_mb)
    result.add_series("logic_W", logic_w)
    result.add_series("bram_W", bram_w)
    result.add_series("dynamic_total_W", total_w)
    result.add_note(
        "larger strides cut stage count (logic power) but expand memory "
        "(BRAM power) — the depth-bounding tradeoff of [7]/[8]"
    )
    return result


@register("ablation_temperature", tags=("ablation",))
def temperature_sweep(
    temperatures_c: Sequence[float] = (25.0, 50.0, 70.0, 85.0, 100.0),
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A8 — junction temperature vs static power.

    The paper holds temperature fixed and notes leakage depends on
    "the operating temperature (which affects the leakage current)"
    (Section V-A); this sweep quantifies the sensitivity around the
    published nominal values.
    """
    from repro.fpga.static_power import static_power_w

    temps = tuple(temperatures_c)
    result = ExperimentResult(
        experiment_id="ablation_temperature",
        title=f"A8: static power vs junction temperature, grade {grade}",
        x_label="temperature_C",
        x_values=np.asarray(temps, dtype=float),
    )
    result.add_series(
        "static_W", [static_power_w(grade, temperature_c=t) for t in temps]
    )
    result.add_note("leakage grows ~0.6%/degC above the 50 degC nominal point")
    return result


@register("ablation_heterogeneity", tags=("ablation",))
def heterogeneity_sweep(
    k: int = 8,
    spread_factors: Sequence[float] = (1.0, 2.0, 4.0),
    alpha: float = 0.8,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A9 — heterogeneous table sizes (Assumption 2 relaxed).

    Keeps the *total* prefix count constant while spreading per-VN
    sizes geometrically by ``spread`` (1 = the paper's identical
    tables), then compares separate vs merged memory and model power
    under the heterogeneous resource model.
    """
    from repro.core.resources import scheme_resources_hetero

    spreads = tuple(spread_factors)
    base_total = 3725 * k // 4  # keep runtime modest
    f = 250.0
    model = AnalyticalPowerModel(grade)
    result = ExperimentResult(
        experiment_id="ablation_heterogeneity",
        title=f"A9: heterogeneous table sizes, K={k}, grade {grade}",
        x_label="size_spread",
        x_values=np.asarray(spreads, dtype=float),
    )
    vs_memory = []
    vm_memory = []
    vs_power = []
    vm_power = []
    for spread in spreads:
        # geometric size ladder from small to large, normalized to the total
        ratios = np.geomspace(1.0, spread, k)
        sizes = np.maximum(50, (ratios / ratios.sum() * base_total)).astype(int)
        stats_list = [
            base_trie_stats(SyntheticTableConfig(n_prefixes=int(size), seed=40 + i))
            for i, size in enumerate(sizes)
        ]
        n_stages = max(PAPER_PIPELINE_STAGES, max(s.depth for s in stats_list))
        vs = scheme_resources_hetero(Scheme.VS, stats_list, n_stages=n_stages)
        vm = scheme_resources_hetero(
            Scheme.VM, stats_list, alpha=alpha, n_stages=n_stages
        )
        vs_memory.append(bits_to_mb(vs.total_memory_bits))
        vm_memory.append(bits_to_mb(vm.total_memory_bits))
        mu = np.full(k, 1.0 / k)
        vs_power.append(model.power_vs(list(vs.engine_maps), f, mu).total_w)
        vm_power.append(model.power_vm(vm.engine_maps[0], f).total_w)
    result.add_series("separate_memory_Mb", vs_memory)
    result.add_series("merged_memory_Mb", vm_memory)
    result.add_series("separate_power_W", vs_power)
    result.add_series("merged_power_W", vm_power)
    result.add_note(
        "with total prefixes fixed, skewing sizes barely moves the separate "
        "scheme but helps merging: small tables vanish into the big one"
    )
    return result


@register("ablation_structures", tags=("ablation",))
def structure_comparison(
    config: SyntheticTableConfig | None = None,
    grade: SpeedGrade = SpeedGrade.G2,
) -> ExperimentResult:
    """A10 — lookup-structure shootout: memory, stages and power.

    Compares the paper's leaf-pushed uni-bit trie against the plain
    trie, path compression (PATRICIA, ref. [16]) and stride-4
    prefix expansion on the same table: nodes, memory, pipeline depth
    and single-engine dynamic power at a common clock.
    """
    from repro.iplookup.multibit import MultibitTrie
    from repro.iplookup.patricia import PatriciaTrie

    config = config or SyntheticTableConfig(n_prefixes=1000, seed=13)
    table = generate_table(config)
    fmt = DEFAULT_NODE_FORMAT
    model = AnalyticalPowerModel(grade)
    f = 250.0

    plain = UnibitTrie(table)
    pushed = leaf_push(plain)
    patricia = PatriciaTrie(table)
    multibit = MultibitTrie(table, stride=4)

    rows = []  # (label, nodes, memory_bits, stages, dynamic_W)

    plain_bits = plain.num_nodes * (fmt.internal_node_bits() + fmt.nhi_bits)
    plain_per_stage = np.zeros(plain.depth(), dtype=np.int64)
    for level, count in enumerate(plain.stats().nodes_per_level):
        if level:
            plain_per_stage[level - 1] = count * (fmt.internal_node_bits() + fmt.nhi_bits)
    rows.append(("plain_unibit", plain.num_nodes, plain_bits, plain.depth(), plain_per_stage))

    pushed_map = map_trie_to_stages(pushed.stats(), pushed.depth(), fmt)
    rows.append(
        (
            "leaf_pushed",
            pushed.num_nodes,
            pushed_map.total_bits,
            pushed.depth(),
            np.asarray(pushed_map.bits_per_stage),
        )
    )

    pat_stats = patricia.stats()
    pat_bits = pat_stats.memory_bits(fmt.pointer_bits, fmt.nhi_bits)
    # compressed depth in nodes = pipeline stages; spread memory evenly
    pat_per_stage = np.full(
        max(1, pat_stats.depth_nodes), pat_bits // max(1, pat_stats.depth_nodes)
    )
    rows.append(("patricia", pat_stats.total_nodes, pat_bits, pat_stats.depth_nodes, pat_per_stage))

    mb_stats = multibit.stats()
    mb_bits = multibit.memory_bits(fmt.pointer_bits + 2)
    mb_per_stage = np.zeros(multibit.pipeline_stages(), dtype=np.int64)
    for level, count in enumerate(mb_stats.nodes_per_level):
        mb_per_stage[level] = count * mb_stats.entries_per_node * (fmt.pointer_bits + 2)
    rows.append(("multibit_s4", multibit.num_nodes, mb_bits, multibit.pipeline_stages(), mb_per_stage))

    result = ExperimentResult(
        experiment_id="ablation_structures",
        title=f"A10: lookup structures on one table, grade {grade}",
        x_label="structure",
        x_values=np.arange(len(rows), dtype=float),
    )
    result.add_series("nodes", [r[1] for r in rows])
    result.add_series("memory_Mb", [bits_to_mb(r[2]) for r in rows])
    result.add_series("pipeline_stages", [r[3] for r in rows])
    dynamic = []
    for _, _, _, stages, per_stage in rows:
        logic = stages * model.stage_logic_power_w(f)
        memory = sum(model.stage_memory_power_w(int(b), f) for b in per_stage)
        dynamic.append(logic + memory)
    result.add_series("dynamic_W", dynamic)
    for i, (label, *_rest) in enumerate(rows):
        result.add_note(f"row {i}: {label}")
    return result


@register("ablation_balancing", tags=("ablation",))
def balancing_sweep(
    ks: Sequence[int] = (4, 8),
    alpha: float = 0.2,
    grade: SpeedGrade = SpeedGrade.G2,
    table: SyntheticTableConfig | None = None,
) -> ExperimentResult:
    """A11 — memory-balanced mapping ([7]/[8]) on the merged engine.

    The merged scheme suffers most from wide stages (its fmax collapse
    drives the paper's Fig. 8 ordering); balancing the real merged
    trie's stage memories reduces the widest stage, raising fmax and
    improving mW/Gbps with the exact same total memory.
    """
    from repro.fpga.bram import pack_stage_memory
    from repro.fpga.timing import achievable_fmax_mhz
    from repro.iplookup.balancing import balance_factor, balanced_stage_map
    from repro.iplookup.synth import generate_virtual_tables
    from repro.virt.merged import merge_tries

    table = table or SyntheticTableConfig(n_prefixes=1000, seed=13)
    ks = tuple(ks)
    model = AnalyticalPowerModel(grade)
    result = ExperimentResult(
        experiment_id="ablation_balancing",
        title=f"A11: memory-balanced merged engine, grade {grade}",
        x_label="K",
        x_values=np.asarray(ks, dtype=float),
    )
    naive_fmax = []
    balanced_fmax = []
    naive_eff = []
    balanced_eff = []
    improvements = []
    for k in ks:
        tables = generate_virtual_tables(k, 0.3, table)
        merged = merge_tries([leaf_push(UnibitTrie(t)) for t in tables])
        structure = merged.structure
        n_stages = max(PAPER_PIPELINE_STAGES, structure.depth())
        naive = map_trie_to_stages(
            structure.stats(), n_stages, DEFAULT_NODE_FORMAT, nhi_vector_width=k
        )
        balanced = balanced_stage_map(
            structure, n_stages, nhi_vector_width=k
        ).stage_map

        def engine_point(stage_map):
            widest_blocks = pack_stage_memory(
                stage_map.widest_stage_bits()
            ).total_blocks18_equivalent
            f = achievable_fmax_mhz(grade, widest_blocks, 0.3)
            power = model.power_vm(stage_map, f)
            capacity = throughput_gbps(f, 1)
            return f, mw_per_gbps(power.total_w, capacity)

        f_n, eff_n = engine_point(naive)
        f_b, eff_b = engine_point(balanced)
        naive_fmax.append(f_n)
        balanced_fmax.append(f_b)
        naive_eff.append(eff_n)
        balanced_eff.append(eff_b)
        improvements.append(balance_factor(naive) / balance_factor(balanced))
    result.add_series("naive_fmax_MHz", naive_fmax)
    result.add_series("balanced_fmax_MHz", balanced_fmax)
    result.add_series("naive_mW_per_Gbps", naive_eff)
    result.add_series("balanced_mW_per_Gbps", balanced_eff)
    result.add_series("balance_improvement", improvements)
    result.add_note(
        "balancing trims the widest stage's BRAM mux, raising fmax and "
        "cutting mW/Gbps at identical total memory ([7]/[8])"
    )
    return result
