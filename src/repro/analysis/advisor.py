"""Deployment-scheme advisor.

Given a consolidation problem — K virtual networks, an expected
merging efficiency, per-network throughput demand — rank the three
schemes the way the paper's Section VI discussion would: check the
hard gates first (device resources for VS/VM, shared-engine capacity
for VM), then order the feasible options by power efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator, ScenarioResult
from repro.errors import ConfigurationError, ReproError
from repro.fpga.speedgrade import SpeedGrade
from repro.virt.schemes import Scheme

__all__ = ["Recommendation", "recommend_scheme"]


@dataclass(frozen=True)
class Recommendation:
    """One scheme's evaluation for a consolidation problem."""

    scheme: Scheme
    alpha: float | None
    feasible: bool
    reason: str
    result: ScenarioResult | None = None

    @property
    def mw_per_gbps(self) -> float:
        """Efficiency of the feasible configuration (inf if infeasible)."""
        if self.result is None:
            return float("inf")
        return self.result.experimental_mw_per_gbps

    @property
    def total_w(self) -> float:
        """Total power of the feasible configuration (inf if infeasible)."""
        if self.result is None:
            return float("inf")
        return self.result.experimental.total_w

    def describe(self) -> str:
        """One-line human-readable summary of this recommendation."""
        label = f"VM(a={self.alpha:g})" if self.scheme is Scheme.VM and self.alpha is not None else self.scheme.name
        if not self.feasible:
            return f"{label}: infeasible — {self.reason}"
        return (
            f"{label}: {self.total_w:.2f} W, {self.mw_per_gbps:.1f} mW/Gbps — {self.reason}"
        )


def recommend_scheme(
    k: int,
    *,
    alpha: float = 0.5,
    per_network_gbps: float = 1.0,
    grade: SpeedGrade = SpeedGrade.G2,
) -> list[Recommendation]:
    """Rank NV/VS/VM for a consolidation problem.

    Parameters
    ----------
    k:
        Number of networks to consolidate.
    alpha:
        Expected (pairwise) merging efficiency of the routing tables.
    per_network_gbps:
        Worst-case per-network throughput demand.  NV and VS give each
        network a dedicated engine; VM's single engine must carry the
        aggregate ``k × per_network_gbps``.
    grade:
        Speed grade to evaluate on.

    Returns the recommendations sorted best-first: feasible schemes by
    mW/Gbps, infeasible ones last.
    """
    if per_network_gbps <= 0:
        raise ConfigurationError("per_network_gbps must be positive")
    est = ScenarioEstimator()
    recommendations: list[Recommendation] = []
    for scheme, a in ((Scheme.NV, None), (Scheme.VS, None), (Scheme.VM, alpha)):
        try:
            result = est.evaluate(ScenarioConfig(scheme=scheme, k=k, grade=grade, alpha=a))
        except ReproError as exc:
            recommendations.append(
                Recommendation(scheme=scheme, alpha=a, feasible=False, reason=str(exc))
            )
            continue
        demand = k * per_network_gbps if scheme is Scheme.VM else per_network_gbps
        capacity_per_engine = result.throughput_gbps / result.n_engines
        if capacity_per_engine < demand:
            recommendations.append(
                Recommendation(
                    scheme=scheme,
                    alpha=a,
                    feasible=False,
                    reason=(
                        f"engine capacity {capacity_per_engine:.1f} Gbps below "
                        f"required {demand:.1f} Gbps"
                    ),
                    result=result,
                )
            )
            continue
        if scheme is Scheme.NV:
            reason = f"needs {k} devices; dedicated capacity per network"
        elif scheme is Scheme.VS:
            reason = "one device, per-network engines; best power efficiency"
        else:
            reason = f"one shared engine; memory scaled by measured overlap a={alpha:g}"
        recommendations.append(
            Recommendation(scheme=scheme, alpha=a, feasible=True, reason=reason, result=result)
        )
    return sorted(
        recommendations,
        key=lambda r: (not r.feasible, r.mw_per_gbps),
    )
