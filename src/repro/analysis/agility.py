"""Provisioning agility: adding a virtual network to a live router.

The paper's introduction motivates virtualization by manageability;
this analysis quantifies one management operation — provisioning an
extra virtual network — per scheme:

* **NV** — rack a new device: zero impact on running networks, but
  days of lead time (not modeled) and another device's power forever.
* **VS** — partially reconfigure one spare floorplan region with a new
  engine (Section IV-B's per-engine control); running engines keep
  forwarding through it.
* **VM** — the merged trie must be rebuilt with K+1-wide leaf vectors
  and reloaded.  Without a shadow memory bank the engine stalls for
  the reload; with one (doubling BRAM) the swap is a pointer flip.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import ConfigurationError
from repro.fpga.reconfig import memory_load_time_ms, partial_reconfig_time_ms
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.registry import register
from repro.reporting.result import ExperimentResult
from repro.virt.schemes import Scheme

__all__ = ["run", "provisioning_downtime_ms"]


def provisioning_downtime_ms(
    scheme: Scheme,
    k_before: int,
    *,
    alpha: float = 0.8,
    grade: SpeedGrade = SpeedGrade.G2,
    table: SyntheticTableConfig | None = None,
    shadow_bank: bool = False,
) -> tuple[float, float]:
    """(service interruption, total provisioning time) in ms.

    Service interruption is the time *existing* networks lose
    forwarding; total provisioning time is until the new network
    carries traffic.
    """
    if k_before < 1:
        raise ConfigurationError("k_before must be >= 1")
    table = table or SyntheticTableConfig()
    estimator = ScenarioEstimator()
    if scheme is Scheme.NV:
        # new device, configured offline: no shared fabric to touch
        after = estimator.evaluate(
            ScenarioConfig(scheme=scheme, k=k_before + 1, grade=grade, table=table)
        )
        single_region = after.placed.engines[0].region.area_fraction
        return 0.0, partial_reconfig_time_ms(min(1.0, single_region * 18))
    if scheme is Scheme.VS:
        after = estimator.evaluate(
            ScenarioConfig(scheme=scheme, k=k_before + 1, grade=grade, table=table)
        )
        new_region = after.placed.engines[-1].region.area_fraction
        reconfig = partial_reconfig_time_ms(new_region)
        # existing engines keep running during partial reconfiguration
        return 0.0, reconfig
    # VM: rebuild the merged memory with wider leaf vectors
    after = estimator.evaluate(
        ScenarioConfig(
            scheme=scheme, k=k_before + 1, grade=grade, alpha=alpha, table=table
        )
    )
    bits = after.resources.total_memory_bits
    reload_ms = memory_load_time_ms(bits, after.frequency_mhz)
    if shadow_bank:
        return 0.0, reload_ms  # background load, atomic bank flip
    return reload_ms, reload_ms


@register("agility", tags=("extras",))
def run(
    ks: Sequence[int] = (2, 4, 8, 14),
    grade: SpeedGrade = SpeedGrade.G2,
    table: SyntheticTableConfig | None = None,
) -> ExperimentResult:
    """Provisioning downtime per scheme as the platform fills up."""
    table = table or SyntheticTableConfig(n_prefixes=1000, seed=99)
    ks = tuple(ks)
    result = ExperimentResult(
        experiment_id="agility",
        title=f"Provisioning a new VN: downtime per scheme, grade {grade} (ms)",
        x_label="K_before",
        x_values=np.asarray(ks, dtype=float),
    )
    series: dict[str, list[float]] = {
        "NV_interruption_ms": [],
        "VS_interruption_ms": [],
        "VM_interruption_ms": [],
        "VM_shadow_interruption_ms": [],
        "VS_provision_ms": [],
        "VM_provision_ms": [],
    }
    for k in ks:
        nv_int, _ = provisioning_downtime_ms(Scheme.NV, k, grade=grade, table=table)
        vs_int, vs_total = provisioning_downtime_ms(
            Scheme.VS, k, grade=grade, table=table
        )
        vm_int, vm_total = provisioning_downtime_ms(
            Scheme.VM, k, grade=grade, table=table
        )
        vm_shadow_int, _ = provisioning_downtime_ms(
            Scheme.VM, k, grade=grade, table=table, shadow_bank=True
        )
        series["NV_interruption_ms"].append(nv_int)
        series["VS_interruption_ms"].append(vs_int)
        series["VM_interruption_ms"].append(vm_int)
        series["VM_shadow_interruption_ms"].append(vm_shadow_int)
        series["VS_provision_ms"].append(vs_total)
        series["VM_provision_ms"].append(vm_total)
    for label, values in series.items():
        result.add_series(label, values)
    result.add_note(
        "NV/VS provision without interrupting running networks (dedicated "
        "device / partial region); merged stalls for its memory reload "
        "unless a shadow bank doubles the BRAM"
    )
    return result
