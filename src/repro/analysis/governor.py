"""Operating-point governor: meet a throughput demand at minimum power.

The paper's Section VI-B conclusion — "low power FPGAs are suitable in
environments where throughput is not the major concern" — implies a
selection problem: given a demand, pick the speed grade, scheme and
operating frequency that satisfy it at the least power.  The governor
solves that by sweeping the feasible operating points and also exposes
the underlying power/throughput Pareto frontier.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import CapacityError, ConfigurationError, ReproError
from repro.fpga.speedgrade import SpeedGrade
from repro.units import w_to_mw
from repro.virt.schemes import Scheme

__all__ = ["OperatingPoint", "plan_operating_point", "pareto_frontier"]


@dataclass(frozen=True)
class OperatingPoint:
    """One feasible (scheme, grade, frequency) choice and its cost."""

    scheme: Scheme
    grade: SpeedGrade
    alpha: float | None
    frequency_mhz: float
    total_power_w: float
    capacity_gbps: float

    @property
    def mw_per_gbps(self) -> float:
        """Efficiency of this operating point."""
        return w_to_mw(self.total_power_w) / self.capacity_gbps

    def describe(self) -> str:
        """One-line summary for reports."""
        scheme = (
            f"VM(a={self.alpha:g})"
            if self.scheme is Scheme.VM and self.alpha is not None
            else self.scheme.name
        )
        return (
            f"{scheme} grade {self.grade} @ {self.frequency_mhz:.0f} MHz: "
            f"{self.total_power_w:.2f} W for {self.capacity_gbps:.0f} Gbps"
        )


def _candidate_points(
    k: int,
    alpha: float,
    schemes,
    frequency_steps: int,
) -> list[OperatingPoint]:
    estimator = ScenarioEstimator()
    points: list[OperatingPoint] = []
    for scheme in schemes:
        a = alpha if scheme is Scheme.VM else None
        for grade in SpeedGrade:
            base = ScenarioConfig(scheme=scheme, k=k, grade=grade, alpha=a)
            try:
                at_fmax = estimator.evaluate(base)
            except ReproError:
                continue
            fmax = at_fmax.fmax_mhz
            for fraction in np.linspace(1.0 / frequency_steps, 1.0, frequency_steps):
                f = fmax * float(fraction)
                result = (
                    at_fmax
                    if fraction >= 1.0  # linspace endpoint is exact
                    else estimator.evaluate(replace(base, frequency_mhz=f))
                )
                points.append(
                    OperatingPoint(
                        scheme=scheme,
                        grade=grade,
                        alpha=a,
                        frequency_mhz=result.frequency_mhz,
                        total_power_w=result.experimental.total_w,
                        capacity_gbps=result.throughput_gbps,
                    )
                )
    return points


def plan_operating_point(
    demand_gbps: float,
    k: int,
    *,
    alpha: float = 0.8,
    schemes: Sequence[Scheme] = (Scheme.VS, Scheme.VM),
    frequency_steps: int = 8,
) -> OperatingPoint:
    """Cheapest operating point meeting an aggregate demand.

    Parameters
    ----------
    demand_gbps:
        Required aggregate lookup capacity.
    k:
        Number of virtual networks.
    alpha:
        Merging efficiency assumed for VM candidates.
    schemes:
        Candidate schemes (NV included only if passed explicitly).
    frequency_steps:
        Frequency grid resolution between 0 and fmax per candidate.

    Raises :class:`CapacityError` if no candidate meets the demand.
    """
    if demand_gbps <= 0:
        raise ConfigurationError("demand must be positive")
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    feasible = [
        p
        for p in _candidate_points(k, alpha, schemes, frequency_steps)
        if p.capacity_gbps >= demand_gbps
    ]
    if not feasible:
        raise CapacityError(
            f"no candidate sustains {demand_gbps:.1f} Gbps for K={k}"
        )
    return min(feasible, key=lambda p: (p.total_power_w, -p.capacity_gbps))


def pareto_frontier(
    k: int,
    *,
    alpha: float = 0.8,
    schemes: Sequence[Scheme] = (Scheme.VS, Scheme.VM),
    frequency_steps: int = 8,
) -> list[OperatingPoint]:
    """Power/throughput Pareto frontier over the candidate space.

    Returns points sorted by capacity where no other point has both
    more capacity and less power.
    """
    points = _candidate_points(k, alpha, schemes, frequency_steps)
    points.sort(key=lambda p: (p.capacity_gbps, p.total_power_w))
    frontier: list[OperatingPoint] = []
    best_power = float("inf")
    for point in reversed(points):  # descending capacity
        if point.total_power_w < best_power - 1e-12:
            frontier.append(point)
            best_power = point.total_power_w
    frontier.reverse()
    return frontier
