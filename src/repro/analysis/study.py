"""Consolidation study: one report answering "should we virtualize?".

Stitches the library's pieces into the document an operator would
actually want: given K networks with demands and duty cycles, evaluate
every scheme's feasibility (device fit + admission), power (model and
measured, with tolerance bounds), efficiency, latency at the offered
load, and provisioning agility — then rank and recommend.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.agility import provisioning_downtime_ms
from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator, ScenarioResult
from repro.core.power import AnalyticalPowerModel
from repro.core.uncertainty import PowerBounds, power_bounds
from repro.errors import CapacityError, ConfigurationError, ReproError
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.tables import render_kv, render_table
from repro.virt.qos import check_admission
from repro.virt.queueing import scheme_latency_ns
from repro.virt.schemes import Scheme

__all__ = ["SchemeAssessment", "ConsolidationStudy", "run_study"]


@dataclass(frozen=True)
class SchemeAssessment:
    """One scheme's complete evaluation inside a study."""

    scheme: Scheme
    alpha: float | None
    feasible: bool
    reason: str
    result: ScenarioResult | None = None
    bounds: PowerBounds | None = None
    latency_ns: float | None = None
    interruption_ms: float | None = None

    @property
    def label(self) -> str:
        if self.scheme is Scheme.VM and self.alpha is not None:
            return f"VM(a={self.alpha:g})"
        return self.scheme.name

    @property
    def sort_key(self) -> tuple:
        power = self.result.experimental.total_w if self.result else float("inf")
        return (not self.feasible, power)


@dataclass(frozen=True)
class ConsolidationStudy:
    """The full study: inputs, per-scheme assessments, recommendation."""

    k: int
    demands_gbps: tuple[float, ...]
    duty_cycle: float
    grade: SpeedGrade
    assessments: tuple[SchemeAssessment, ...]

    @property
    def recommendation(self) -> SchemeAssessment:
        """The feasible scheme with the lowest measured power."""
        ranked = sorted(self.assessments, key=lambda a: a.sort_key)
        best = ranked[0]
        if not best.feasible:
            raise CapacityError("no scheme can host this consolidation")
        return best

    def render(self) -> str:
        """Human-readable study report."""
        out = io.StringIO()
        out.write(f"== consolidation study: K={self.k}, grade {self.grade} ==\n")
        out.write(
            render_kv(
                [
                    ("aggregate demand", f"{sum(self.demands_gbps):.1f} Gbps"),
                    ("hottest network", f"{max(self.demands_gbps):.1f} Gbps"),
                    ("duty cycle", f"{self.duty_cycle:.0%}"),
                ]
            )
        )
        rows = [
            [
                "scheme",
                "feasible",
                "power_W",
                "bounds_W",
                "mW/Gbps",
                "latency_ns",
                "provision_ms",
            ]
        ]
        for a in sorted(self.assessments, key=lambda a: a.sort_key):
            if a.result is None:
                rows.append([a.label, "no", "-", "-", "-", "-", "-"])
                continue
            bounds = (
                f"[{a.bounds.low_w:.2f}, {a.bounds.high_w:.2f}]" if a.bounds else "-"
            )
            rows.append(
                [
                    a.label,
                    "yes" if a.feasible else "no",
                    f"{a.result.experimental.total_w:.2f}",
                    bounds,
                    f"{a.result.experimental_mw_per_gbps:.1f}",
                    f"{a.latency_ns:.0f}" if a.latency_ns is not None else "-",
                    f"{a.interruption_ms:.2f}" if a.interruption_ms is not None else "-",
                ]
            )
        out.write(render_table(rows))
        for a in self.assessments:
            if not a.feasible:
                out.write(f"  {a.label}: {a.reason}\n")
        best = self.recommendation
        out.write(f"  recommendation: {best.label} — {best.reason}\n")
        return out.getvalue()


def run_study(
    demands_gbps: Sequence[float],
    *,
    alpha: float = 0.8,
    duty_cycle: float = 1.0,
    grade: SpeedGrade = SpeedGrade.G2,
    table: SyntheticTableConfig | None = None,
) -> ConsolidationStudy:
    """Evaluate all schemes for a consolidation problem."""
    demands = tuple(float(d) for d in demands_gbps)
    if not demands or any(d <= 0 for d in demands):
        raise ConfigurationError("demands must be a non-empty positive vector")
    k = len(demands)
    table = table or SyntheticTableConfig()
    estimator = ScenarioEstimator()
    aggregate = sum(demands)

    assessments: list[SchemeAssessment] = []
    for scheme, a in ((Scheme.NV, None), (Scheme.VS, None), (Scheme.VM, alpha)):
        try:
            result = estimator.evaluate(
                ScenarioConfig(
                    scheme=scheme,
                    k=k,
                    alpha=a,
                    grade=grade,
                    duty_cycle=duty_cycle,
                    table=table,
                )
            )
        except ReproError as exc:
            assessments.append(
                SchemeAssessment(
                    scheme=scheme, alpha=a, feasible=False, reason=str(exc)
                )
            )
            continue
        n_engines = result.n_engines
        per_engine_capacity = result.throughput_gbps / n_engines
        if scheme is Scheme.VM:
            admission = check_admission(result.throughput_gbps, demands)
            feasible = admission.admissible
            reason = (
                "shared engine admits all demands"
                if feasible
                else f"aggregate {aggregate:.1f} Gbps exceeds the shared engine"
            )
        else:
            feasible = max(demands) <= per_engine_capacity
            reason = (
                "per-network engines cover the hottest demand"
                if feasible
                else "hottest network exceeds one engine's line rate"
            )
        latency = None
        if feasible:
            try:
                latency = scheme_latency_ns(
                    scheme.name,
                    aggregate,
                    per_engine_capacity,
                    n_engines,
                    result.frequency_mhz,
                    result.config.n_stages,
                ).total_ns
            except CapacityError:
                latency = None
        model = AnalyticalPowerModel(grade)
        bounds = power_bounds(
            model,
            scheme,
            list(result.resources.engine_maps),
            result.frequency_mhz,
            result.config.utilization_vector(),
            duty_cycle=duty_cycle,
        )
        interruption, _ = provisioning_downtime_ms(
            scheme, k, alpha=alpha if a is not None else 0.8, grade=grade, table=table
        )
        if scheme is Scheme.NV:
            reason += f"; {k} devices"
        assessments.append(
            SchemeAssessment(
                scheme=scheme,
                alpha=a,
                feasible=feasible,
                reason=reason,
                result=result,
                bounds=bounds,
                latency_ns=latency,
                interruption_ms=interruption,
            )
        )
    return ConsolidationStudy(
        k=k,
        demands_gbps=demands,
        duty_cycle=duty_cycle,
        grade=grade,
        assessments=tuple(assessments),
    )
