"""Crossover detection along the K axis.

The paper's qualitative findings are mostly *orderings* ("VS best, NV
second, merged worst") and the interesting engineering question is
*where* the orderings flip — e.g. at what K a merged deployment stops
beating a conventional one in mW/Gbps.  These helpers locate such
crossovers on sampled series.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ScenarioEstimator
from repro.errors import ConfigurationError
from repro.fpga.speedgrade import SpeedGrade
from repro.virt.schemes import Scheme

__all__ = ["find_crossover", "scheme_crossover_k"]


def find_crossover(
    x: Sequence[float] | np.ndarray,
    a: Sequence[float] | np.ndarray,
    b: Sequence[float] | np.ndarray,
) -> float | None:
    """First x where series ``a`` rises above series ``b``.

    Linear interpolation between samples; ``None`` when ``a`` never
    exceeds ``b`` on the sampled range.  If ``a`` starts above ``b``,
    the first x is returned.
    """
    x = np.asarray(x, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if not (x.shape == a.shape == b.shape):
        raise ConfigurationError("series must have identical shapes")
    if len(x) == 0:
        return None
    diff = a - b
    if diff[0] > 0:
        return float(x[0])
    for i in range(1, len(x)):
        if diff[i] > 0:
            # interpolate the zero crossing between i-1 and i
            d0, d1 = diff[i - 1], diff[i]
            if d1 == d0:
                return float(x[i])
            t = -d0 / (d1 - d0)
            return float(x[i - 1] + t * (x[i] - x[i - 1]))
    return None


def scheme_crossover_k(
    scheme_a: Scheme,
    scheme_b: Scheme,
    *,
    alpha_a: float | None = None,
    alpha_b: float | None = None,
    metric: str = "mw_per_gbps",
    ks: Sequence[int] = tuple(range(1, 16)),
    grade: SpeedGrade = SpeedGrade.G2,
) -> float | None:
    """K at which ``scheme_a``'s metric overtakes ``scheme_b``'s.

    ``metric`` is one of ``"mw_per_gbps"`` (experimental efficiency) or
    ``"total_w"`` (experimental total power); for both, larger = worse,
    so the crossover is where A becomes worse than B.
    """
    if metric not in ("mw_per_gbps", "total_w"):
        raise ConfigurationError(f"unknown metric {metric!r}")
    est = ScenarioEstimator()

    def series(scheme: Scheme, alpha: float | None) -> np.ndarray:
        values = []
        for k in ks:
            r = est.evaluate(ScenarioConfig(scheme=scheme, k=k, grade=grade, alpha=alpha))
            values.append(
                r.experimental_mw_per_gbps if metric == "mw_per_gbps" else r.experimental.total_w
            )
        return np.asarray(values)

    return find_crossover(
        np.asarray(ks, dtype=float), series(scheme_a, alpha_a), series(scheme_b, alpha_b)
    )
