"""User-facing command-line tools.

* ``repro-experiments`` (in :mod:`repro.experiments.runner`) —
  regenerate the paper's tables and figures.
* ``repro-lookup`` (:mod:`repro.tools.lookup_cli`) — inspect routing
  tables: structural statistics, lookups against every implemented
  structure, and churn/write-rate analysis.
"""

__all__: list[str] = []
