"""``repro-serve`` — drive the sharded async serving tier end to end.

Subcommands
-----------
``smoke [--shards 2] [--lookups 50000] [--batches 10] [--scheme VS]``
    The CI smoke gate: boot an N-shard :class:`ShardedLookupService`
    with real worker processes, pump the requested number of lookups
    through the asyncio front end in batches, shut the tier down
    cleanly and then check the merged multi-shard exposition for
    consistency — the summed per-shard ``repro_serve_lookups_total``
    counters must equal the number of lookups the client saw answered.
    Any mismatch, shard crash or unclean shutdown exits non-zero.
``run [--rho 0.8] [--fault-seed N]``
    The same tier as an inspectable demo: serve one large batch, print
    the per-shard M/D/1 queue validations, the degradation ledger and
    the merged exposition.

Both commands build the same synthetic tables the other CLIs use
(``--prefixes``, ``--seed``); the tier's behaviour — admission,
backpressure, scatter order — does not depend on table size.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

import numpy as np

from repro.errors import ReproError
from repro.faults import SHED_RESULT, FaultPlan
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.export import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import restore_registry
from repro.obs.tracing import Tracer
from repro.serve import ShardedLookupService
from repro.virt.schemes import Scheme


def _tables(args: argparse.Namespace):
    config = SyntheticTableConfig(n_prefixes=args.prefixes, seed=args.seed)
    return generate_virtual_tables(args.k, 0.5, config)


def _batches(args: argparse.Namespace, n_batches: int, per_batch: int):
    rng = np.random.default_rng(args.seed)
    for _ in range(n_batches):
        addresses = rng.integers(0, 1 << 32, size=per_batch, dtype=np.uint64)
        vnids = rng.integers(0, args.k, size=per_batch, dtype=np.int64)
        yield addresses.astype(np.uint32), vnids


def _service(args: argparse.Namespace, **kwargs) -> ShardedLookupService:
    return ShardedLookupService(
        _tables(args),
        Scheme[args.scheme],
        n_shards=args.shards,
        transport=args.transport,
        registry=MetricsRegistry(enabled=True),
        tracer=Tracer(enabled=False),
        **kwargs,
    )


async def _smoke(args: argparse.Namespace) -> int:
    per_batch = max(1, args.lookups // args.batches)
    served = 0
    async with _service(args) as service:
        for addresses, vnids in _batches(args, args.batches, per_batch):
            results, trace = await service.serve(addresses, vnids)
            served += int(np.count_nonzero(results != SHED_RESULT))
            if trace.n_shed:
                print(
                    f"warning: {trace.n_shed} lookups shed under nominal load",
                    file=sys.stderr,
                )
        merged = await service.merged_snapshot()

    counted = merged.counter_total("repro_serve_lookups_total")
    total = args.batches * per_batch
    print(
        f"serve-smoke: {args.shards} shard(s), {args.batches} batch(es), "
        f"{total} lookups offered, {served} answered, "
        f"{counted:.0f} counted across shard registries"
    )
    if counted != served:
        print(
            "serve-smoke: FAIL — merged shard counters disagree with the "
            f"client-observed count ({counted:.0f} != {served})",
            file=sys.stderr,
        )
        return 1
    print("serve-smoke: OK — merged exposition is consistent")
    return 0


async def _run(args: argparse.Namespace) -> int:
    plan = None
    if args.fault_seed is not None:
        scheme = Scheme[args.scheme]
        plan = FaultPlan.generate(
            args.fault_seed,
            n_batches=8,
            n_engines=scheme.engines_required(args.k),
            n_faults=args.n_faults,
        )
    async with _service(
        args, offered_load_fraction=args.rho, fault_plan=plan
    ) as service:
        addresses, vnids = next(iter(_batches(args, 1, args.lookups)))
        results, trace = await service.serve(addresses, vnids)
        print(
            f"served {int(np.count_nonzero(results != SHED_RESULT))}/{len(results)} "
            f"lookups over {args.shards} shard(s) (shed {trace.n_shed})"
        )
        for shard, validation in sorted(service.queue_validations.items()):
            print(
                f"shard {shard}: M/D/1 wait observed "
                f"{validation.observed_wait_ns:8.1f} ns, predicted "
                f"{validation.predicted_wait_ns:8.1f} ns "
                f"(rel err {validation.relative_error:.1%} at "
                f"rho={validation.utilization:.2f})"
            )
        merged = await service.merged_snapshot()
    print(render_prometheus(restore_registry(merged)), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-serve`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Drive the sharded async serving tier.",
    )
    parser.add_argument("--k", type=int, default=4, help="virtual networks")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--scheme", choices=[s.name for s in Scheme], default="VS"
    )
    parser.add_argument(
        "--transport",
        choices=("process", "inline"),
        default="process",
        help="shard transport (inline = same process, for debugging)",
    )
    parser.add_argument("--prefixes", type=int, default=500)
    parser.add_argument("--seed", type=int, default=2012)

    sub = parser.add_subparsers(dest="command", required=True)

    smoke = sub.add_parser("smoke", help="CI smoke gate (see docs/SERVING.md)")
    smoke.add_argument("--lookups", type=int, default=50_000)
    smoke.add_argument("--batches", type=int, default=10)
    smoke.set_defaults(handler=_smoke)

    run = sub.add_parser("run", help="one inspectable batch + exposition")
    run.add_argument("--lookups", type=int, default=50_000)
    run.add_argument("--rho", type=float, default=0.8)
    run.add_argument("--fault-seed", type=int, default=None)
    run.add_argument("--n-faults", type=int, default=4)
    run.set_defaults(handler=_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console-script entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(args.handler(args))
    except ReproError as err:
        print(f"repro-serve: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
