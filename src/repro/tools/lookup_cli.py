"""``repro-lookup`` — inspect routing tables from the command line.

Subcommands
-----------
``stats FILE``
    Table and trie statistics: prefix histogram, node counts for every
    implemented structure, stage memory under the paper's encoding.
``lookup FILE ADDRESS [ADDRESS...]``
    Longest-prefix-match each address with every structure and verify
    they agree with the linear-scan oracle.
``churn FILE [--updates N] [--rate R] [--clock F]``
    Apply a synthetic BGP churn stream, report per-update memory
    writes and the effective BRAM write rate at the given lookup
    clock (the paper's Section V-B input).

The FILE format is ``prefix next_hop`` per line (see
``examples/data/edge_sample.rib``); ``-`` is not supported — tables
are files, as BGP snapshot exports are.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.mapping import map_trie_to_stages
from repro.iplookup.multibit import MultibitTrie
from repro.iplookup.patricia import PatriciaTrie
from repro.iplookup.prefix import format_address, parse_address
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.iplookup.trie import UnibitTrie
from repro.iplookup.updates import apply_updates, effective_write_rate, synthesize_churn
from repro.reporting.tables import render_kv, render_table
from repro.units import bits_to_mb

__all__ = ["main"]


def _cmd_stats(args: argparse.Namespace) -> int:
    table = RoutingTable.from_file(args.file)
    trie = UnibitTrie(table)
    pushed = leaf_push(trie)
    patricia = PatriciaTrie(table)
    multibit = MultibitTrie(table, stride=4)
    hist = table.length_histogram()
    top = sorted(
        ((int(count), length) for length, count in enumerate(hist) if count),
        reverse=True,
    )[:5]
    print(f"table: {args.file}")
    print(
        render_kv(
            [
                ("prefixes", str(len(table))),
                ("next hops", str(len(table.next_hops()))),
                ("max length", f"/{table.max_length()}"),
                (
                    "top lengths",
                    ", ".join(f"/{length} x{count}" for count, length in top),
                ),
            ]
        )
    )
    n_stages = max(28, pushed.depth())
    stage_map = map_trie_to_stages(pushed.stats(), n_stages)
    rows = [
        ["structure", "nodes", "depth", "memory_Mb"],
        ["uni-bit trie", str(trie.num_nodes), str(trie.depth()), "-"],
        [
            "leaf-pushed",
            str(pushed.num_nodes),
            str(pushed.depth()),
            f"{bits_to_mb(stage_map.total_bits):.4f}",
        ],
        [
            "patricia",
            str(patricia.num_nodes),
            str(patricia.stats().depth_nodes),
            f"{bits_to_mb(patricia.stats().memory_bits()):.4f}",
        ],
        [
            "multibit s=4",
            str(multibit.num_nodes),
            str(multibit.depth()),
            f"{bits_to_mb(multibit.memory_bits()):.4f}",
        ],
    ]
    print(render_table(rows))
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    table = RoutingTable.from_file(args.file)
    trie = leaf_push(UnibitTrie(table))
    patricia = PatriciaTrie(table)
    multibit = MultibitTrie(table, stride=4)
    rows = [["address", "next_hop", "agreement"]]
    status = 0
    for text in args.addresses:
        address = parse_address(text)
        oracle = table.lookup_linear(address)
        answers = {
            "trie": trie.lookup(address),
            "patricia": patricia.lookup(address),
            "multibit": multibit.lookup(address),
        }
        agree = all(v == oracle for v in answers.values())
        if not agree:
            status = 1
        hop = "no route" if oracle == NO_ROUTE else str(oracle)
        rows.append(
            [format_address(address), hop, "ok" if agree else f"MISMATCH {answers}"]
        )
    print(render_table(rows))
    return status


def _cmd_churn(args: argparse.Namespace) -> int:
    table = RoutingTable.from_file(args.file)
    trie = UnibitTrie(table)
    updates = synthesize_churn(table, args.updates, seed=args.seed)
    stats = apply_updates(trie, updates)
    rate = effective_write_rate(stats, args.rate, args.clock)
    print(
        render_kv(
            [
                ("updates applied", str(stats.total_updates)),
                ("announces / withdraws / no-ops",
                 f"{stats.announces} / {stats.withdraws} / {stats.no_ops}"),
                ("memory writes", str(stats.memory_writes)),
                ("mean writes per update", f"{stats.mean_writes_per_update():.2f}"),
                ("worst single update", str(stats.max_writes_per_update())),
                (
                    f"write rate @ {args.rate:g}/s, {args.clock:g} MHz",
                    f"{rate:.6%} (paper assumes 1%)",
                ),
            ]
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lookup`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-lookup", description="Inspect routing tables."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="table and structure statistics")
    p_stats.add_argument("file")
    p_stats.set_defaults(func=_cmd_stats)

    p_lookup = sub.add_parser("lookup", help="LPM addresses across all structures")
    p_lookup.add_argument("file")
    p_lookup.add_argument("addresses", nargs="+", metavar="ADDRESS")
    p_lookup.set_defaults(func=_cmd_lookup)

    p_churn = sub.add_parser("churn", help="apply synthetic churn, report write rate")
    p_churn.add_argument("file")
    p_churn.add_argument("--updates", type=int, default=500)
    p_churn.add_argument("--rate", type=float, default=100_000.0, help="updates/second")
    p_churn.add_argument("--clock", type=float, default=300.0, help="lookup clock, MHz")
    p_churn.add_argument("--seed", type=int, default=0)
    p_churn.set_defaults(func=_cmd_churn)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
