"""``repro-metrics`` — exercise and export the observability layer.

Subcommands
-----------
``snapshot [--format prometheus|jsonl]``
    Enable observability, serve a small instrumented workload in-process
    and print the resulting metrics registry in the chosen wire format.
    With ``--power`` the workload also attaches a
    :class:`~repro.obs.power.PowerTelemetrySampler`, so the power gauges
    (``repro_power_*``) appear in the exposition.  With ``--write FILE``
    the registry is instead frozen to a portable snapshot JSON document
    (optionally ``--shard``-labeled); with ``--merge FILE...`` no
    workload runs at all — the given snapshot files (one per shard, as
    written by ``--write`` or scraped from the sharded serving tier) are
    merged losslessly into one exposition and rendered.  This is the
    offline face of the scrape-merge pipeline in
    :mod:`repro.obs.snapshot`.
``tail``
    Run the same workload but stream every span as a JSONL line to
    stdout the moment it closes (the ``attach_sink`` pipeline); metrics
    are printed afterwards unless ``--no-metrics``.
``demo [--grade G2] [--kmax 15]``
    The paper's K = 1..kmax sweep driven through the *live* telemetry
    path: for each scheme one instrumented batch is served per K and the
    power/throughput table printed is read back from the sampler's
    running estimates — watts and mW/Gbps per scenario, the Fig. 5 /
    Fig. 8 quantities derived from traffic instead of offline sweeps.
``faults [--fault-seed 2012] [--n-faults 4]``
    Chaos run: derive a deterministic fault schedule from the seed
    (:meth:`repro.faults.FaultPlan.generate`), serve the workload
    through it and print the per-batch degradation ledger — active
    faults, shed lookups, retries, degraded latency, live watts with
    ``--power`` — followed by the error-budget counters.  The same
    seed always produces the same ledger.  See ``docs/ROBUSTNESS.md``.

The served tables are synthetic and deliberately small (``--prefixes``)
— the live trace contributes only *activity*; the power model behind
the gauges is evaluated on the paper's reference scenario either way.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig, generate_virtual_tables
from repro.obs.export import render_metrics_jsonl, render_prometheus
from repro.obs.registry import default_registry
from repro.obs.snapshot import (
    RegistrySnapshot,
    merge_snapshots,
    restore_registry,
    snapshot_registry,
)
from repro.obs.tracing import default_tracer
from repro.reporting.tables import render_table
from repro.serve.service import LookupService
from repro.virt.schemes import Scheme

__all__ = ["main"]

#: demo sweep variants: (scheme, alpha) — NV, VS and the α=80 % merge
DEMO_VARIANTS: tuple[tuple[Scheme, float | None], ...] = (
    (Scheme.NV, None),
    (Scheme.VS, None),
    (Scheme.VM, 0.8),
)


def _served_tables(k: int, n_prefixes: int, seed: int):
    """Small per-VN tables for the instrumented workload (activity only)."""
    config = SyntheticTableConfig(n_prefixes=n_prefixes, seed=seed)
    return generate_virtual_tables(k, shared_fraction=0.5, config=config)


def _uniform_batch(
    k: int, batch_size: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One batch with exactly ``batch_size // k`` lookups per VN."""
    per_vn = max(1, batch_size // k)
    addresses = rng.integers(0, 2**32, size=per_vn * k, dtype=np.uint32)
    vnids = np.repeat(np.arange(k, dtype=np.int64), per_vn)
    return addresses, vnids


def _build_service(
    scheme: Scheme,
    k: int,
    *,
    n_prefixes: int,
    seed: int,
    power: bool,
    grade: SpeedGrade,
    alpha: float | None,
    fault_plan: FaultPlan | None = None,
) -> LookupService:
    tables = _served_tables(k, n_prefixes, seed)
    sampler = None
    if power:
        from repro.obs.power import PowerTelemetrySampler

        sampler = PowerTelemetrySampler(scheme, k, grade=grade, alpha=alpha)
    return LookupService(
        tables, scheme, power_sampler=sampler, fault_plan=fault_plan
    )


def _run_workload(args: argparse.Namespace, *, power: bool) -> LookupService:
    """Serve ``--batches`` uniform batches through one instrumented service."""
    scheme = Scheme[args.scheme]
    alpha = args.alpha if scheme is Scheme.VM and args.k > 1 else None
    service = _build_service(
        scheme,
        args.k,
        n_prefixes=args.prefixes,
        seed=args.seed,
        power=power,
        grade=SpeedGrade[args.grade],
        alpha=alpha,
    )
    rng = np.random.default_rng(args.seed)
    for _ in range(args.batches):
        addresses, vnids = _uniform_batch(args.k, args.batch_size, rng)
        service.serve(addresses, vnids)
    return service


def _render(registry, fmt: str) -> None:
    if fmt == "jsonl":
        sys.stdout.write(render_metrics_jsonl(registry))
    else:
        sys.stdout.write(render_prometheus(registry))


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if args.merge:
        # offline merge path: no workload, just union the shard files
        snapshots = []
        for path in args.merge:
            with open(path, encoding="utf-8") as handle:
                snapshots.append(RegistrySnapshot.from_json(handle.read()))
        merged = merge_snapshots(snapshots)
        _render(restore_registry(merged), args.format)
        shards = sorted({s.shard for s in snapshots if s.shard is not None})
        print(
            f"merged {len(snapshots)} snapshot(s)"
            + (f" from shards {', '.join(shards)}" if shards else ""),
            file=sys.stderr,
        )
        return 0
    registry = default_registry()
    tracer = default_tracer()
    registry.enable()
    tracer.enable()
    _run_workload(args, power=args.power)
    if args.write:
        snapshot = snapshot_registry(registry, shard=args.shard)
        with open(args.write, "w", encoding="utf-8") as handle:
            handle.write(snapshot.to_json())
            handle.write("\n")
        print(f"wrote snapshot to {args.write}", file=sys.stderr)
    else:
        _render(registry, args.format)
    if args.spans:
        count = tracer.export_jsonl(args.spans)
        print(f"wrote {count} span(s) to {args.spans}", file=sys.stderr)
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    registry = default_registry()
    tracer = default_tracer()
    registry.enable()
    tracer.enable()
    tracer.attach_sink(sys.stdout)
    try:
        _run_workload(args, power=args.power)
    finally:
        tracer.attach_sink(None)
    if not args.no_metrics:
        sys.stdout.write(render_prometheus(registry))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    registry = default_registry()
    tracer = default_tracer()
    registry.enable()
    tracer.enable()
    grade = SpeedGrade[args.grade]
    rng = np.random.default_rng(args.seed)
    rows = [["scheme", "K", "f_MHz", "Gbps", "total_W", "mW/Gbps"]]
    for scheme, alpha in DEMO_VARIANTS:
        for k in range(1, args.kmax + 1):
            service = _build_service(
                scheme,
                k,
                n_prefixes=args.prefixes,
                seed=args.seed,
                power=True,
                grade=grade,
                alpha=alpha if k > 1 else None,
            )
            addresses, vnids = _uniform_batch(k, args.batch_size, rng)
            service.serve(addresses, vnids)
            sampler = service.power_sampler
            assert sampler is not None
            label = f"VM(a={int(alpha * 100)}%)" if scheme is Scheme.VM else scheme.name
            rows.append(
                [
                    label,
                    str(k),
                    f"{sampler.scenario.frequency_mhz:.1f}",
                    f"{sampler.scenario.throughput_gbps:.1f}",
                    f"{sampler.running_total_w:.3f}",
                    f"{sampler.running_mw_per_gbps:.2f}",
                ]
            )
            if args.verbose:
                print(f"served {label} K={k}", file=sys.stderr)
    print("live power telemetry (batch-driven, grade " + grade.name + ")")
    print(render_table(rows))
    spans = tracer.spans()
    batches = registry.get("repro_serve_batches_total")
    n_batches = sum(child.value for _, child in batches.samples()) if batches else 0
    print(f"observed {int(n_batches)} batches, recorded {len(spans)} spans")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    registry = default_registry()
    tracer = default_tracer()
    registry.enable()
    tracer.enable()
    scheme = Scheme[args.scheme]
    alpha = args.alpha if scheme is Scheme.VM and args.k > 1 else None
    plan = FaultPlan.generate(
        args.fault_seed,
        n_batches=args.batches,
        n_engines=scheme.engines_required(args.k),
        n_faults=args.n_faults,
    )
    service = _build_service(
        scheme,
        args.k,
        n_prefixes=args.prefixes,
        seed=args.seed,
        power=args.power,
        grade=SpeedGrade[args.grade],
        alpha=alpha,
        fault_plan=plan,
    )
    rng = np.random.default_rng(args.seed)
    header = ["batch", "faults", "admitted", "shed", "retries", "latency_ns"]
    if args.power:
        header.append("watts")
    rows = [header]
    for batch_index in range(args.batches):
        addresses, vnids = _uniform_batch(args.k, args.batch_size, rng)
        _, trace = service.serve(addresses, vnids)
        row = [
            str(batch_index),
            "; ".join(trace.fault_labels) or "-",
            str(trace.n_admitted),
            str(trace.n_shed),
            str(trace.retries),
            f"{trace.latency.total_ns:.1f}",
        ]
        if args.power:
            assert service.power_sampler is not None
            row.append(f"{service.power_sampler.running_total_w:.3f}")
        rows.append(row)
    print(
        f"chaos run: scheme {scheme.name}, K={args.k}, "
        f"fault seed {args.fault_seed}, {len(plan.windows)} window(s)"
    )
    print(render_table(rows))
    print("error budget:")
    for name in (
        "repro_serve_errors_total",
        "repro_serve_shed_lookups_total",
        "repro_serve_retries_total",
    ):
        family = registry.get(name)
        total = (
            sum(child.value for _, child in family.samples()) if family else 0.0
        )
        print(f"  {name}: {total:g}")
    return 0


def _cmd_governor(args: argparse.Namespace) -> int:
    from repro.experiments.governor import ramp_run

    records, service, governor = ramp_run(
        k=args.k,
        batches_per_step=args.batches,
        batch_size=args.batch_size,
        n_prefixes=args.prefixes,
        seed=args.seed,
    )
    rows = [
        [
            "batch", "load", "volts", "f_MHz", "served",
            "watts", "gov_nJ", "G2_nJ", "G1L_nJ",
        ]
    ]
    for r in records:
        rows.append(
            [
                str(r.batch_index),
                f"{r.offered_load:.2f}",
                f"{r.voltage:.4f}",
                f"{r.frequency_mhz:.1f}",
                f"{r.served_fraction:.3f}" + ("*" if r.in_fault_window else ""),
                f"{r.total_w:.3f}",
                f"{r.governed_nj:.2f}",
                "-" if r.static_nominal_nj is None else f"{r.static_nominal_nj:.2f}",
                "-" if r.static_derate_nj is None else f"{r.static_derate_nj:.2f}",
            ]
        )
    print(
        f"governed load ramp: K={args.k} VS, band "
        f"{governor.policy.v_min:.2f}-{governor.policy.v_max:.2f} V "
        f"(* = fault window; - = static grade infeasible at that demand)"
    )
    print(render_table(rows))
    actions = [d.action for d in governor.decisions]
    print(
        f"{len(governor.decisions)} decisions: {actions.count('raise')} raise"
        f" / {actions.count('lower')} lower / {actions.count('hold')} hold; "
        f"final point {service.operating_point.voltage:.4f} V"
    )
    return 0


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", choices=[s.name for s in Scheme], default="VS")
    parser.add_argument("--k", type=int, default=3, help="virtual networks")
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument(
        "--prefixes", type=int, default=256, help="prefixes per served table"
    )
    parser.add_argument("--alpha", type=float, default=0.8, help="VM merge efficiency")
    parser.add_argument("--grade", choices=[g.name for g in SpeedGrade], default="G2")
    parser.add_argument("--seed", type=int, default=2012)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-metrics`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-metrics", description="Exercise and export observability data."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_snap = sub.add_parser("snapshot", help="run a workload, print the registry")
    _add_workload_args(p_snap)
    p_snap.add_argument("--format", choices=["prometheus", "jsonl"], default="prometheus")
    p_snap.add_argument("--power", action="store_true", help="attach a power sampler")
    p_snap.add_argument("--spans", metavar="FILE", help="also export spans as JSONL")
    p_snap.add_argument(
        "--write",
        metavar="FILE",
        help="freeze the registry to a snapshot JSON file instead of rendering",
    )
    p_snap.add_argument(
        "--shard",
        metavar="LABEL",
        help="shard label stamped on a --write snapshot's samples",
    )
    p_snap.add_argument(
        "--merge",
        metavar="FILE",
        nargs="+",
        help="merge snapshot JSON files and render them (no workload is run)",
    )
    p_snap.set_defaults(func=_cmd_snapshot)

    p_tail = sub.add_parser("tail", help="stream spans as JSONL while serving")
    _add_workload_args(p_tail)
    p_tail.add_argument("--power", action="store_true", help="attach a power sampler")
    p_tail.add_argument("--no-metrics", action="store_true")
    p_tail.set_defaults(func=_cmd_tail)

    p_demo = sub.add_parser("demo", help="K sweep with live power telemetry")
    p_demo.add_argument("--kmax", type=int, default=15)
    p_demo.add_argument("--batch-size", type=int, default=512)
    p_demo.add_argument("--prefixes", type=int, default=256)
    p_demo.add_argument("--grade", choices=[g.name for g in SpeedGrade], default="G2")
    p_demo.add_argument("--seed", type=int, default=2012)
    p_demo.add_argument("--verbose", action="store_true")
    p_demo.set_defaults(func=_cmd_demo)

    p_faults = sub.add_parser(
        "faults", help="chaos run: serve a workload under a seeded fault plan"
    )
    _add_workload_args(p_faults)
    p_faults.add_argument(
        "--fault-seed", type=int, default=2012, help="fault schedule seed"
    )
    p_faults.add_argument(
        "--n-faults", type=int, default=4, help="fault windows to draw"
    )
    p_faults.add_argument("--power", action="store_true", help="attach a power sampler")
    p_faults.set_defaults(func=_cmd_faults)

    p_gov = sub.add_parser(
        "governor",
        help="closed-loop DVS ramp: measured duty drives the voltage",
    )
    p_gov.add_argument("--k", type=int, default=4, help="virtual networks")
    p_gov.add_argument(
        "--batches", type=int, default=3, help="batches per load step"
    )
    p_gov.add_argument("--batch-size", type=int, default=600)
    p_gov.add_argument(
        "--prefixes", type=int, default=150, help="prefixes per served table"
    )
    p_gov.add_argument("--seed", type=int, default=23)
    p_gov.set_defaults(func=_cmd_governor)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
