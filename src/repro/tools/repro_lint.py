"""``repro-lint`` — run the staticcheck rule pack from the command line.

Usage::

    repro-lint src/repro                 # lint a tree, text report
    repro-lint --format json src/repro   # machine-readable
    repro-lint --list-rules              # what can fire
    repro-lint --select UNIT001 file.py  # one rule only

Exit status: 0 clean, 1 findings, 2 usage error.  Configuration is
read from the nearest ``pyproject.toml`` (``[tool.repro-lint]``)
unless ``--no-config`` is given; see docs/LINTING.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.staticcheck import (
    all_rules,
    find_pyproject,
    lint_paths,
    load_config,
    render_json,
    render_text,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="units- and invariant-aware static analysis for the repro tree",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--config", type=Path, default=None, help="explicit pyproject.toml to read"
    )
    parser.add_argument(
        "--no-config", action="store_true", help="ignore pyproject.toml configuration"
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by disable comments",
    )
    parser.add_argument(
        "--statistics", action="store_true", help="append per-rule finding counts"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def _list_rules() -> str:
    rows = []
    for rule_id, cls in sorted(all_rules().items()):
        rows.append(f"{rule_id}  {cls.name:<24} {cls.description}")
    return "\n".join(rows)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        print(f"repro-lint: error: no such path: {missing[0]}", file=sys.stderr)
        return 2

    if args.no_config:
        pyproject = None
    elif args.config is not None:
        if not args.config.is_file():
            print(f"repro-lint: error: config not found: {args.config}", file=sys.stderr)
            return 2
        pyproject = args.config
    else:
        pyproject = find_pyproject(targets[0])
    config = load_config(pyproject)
    if args.select:
        config.select = set(args.select)
    if args.ignore:
        config.ignore |= set(args.ignore)

    unknown = (config.select | config.ignore) - set(all_rules())
    if unknown:
        print(f"repro-lint: error: unknown rule id(s): {sorted(unknown)}", file=sys.stderr)
        return 2

    report = lint_paths(list(targets), config)
    if args.format == "json":
        print(render_json(report, show_suppressed=args.show_suppressed))
    else:
        print(
            render_text(
                report,
                show_suppressed=args.show_suppressed,
                statistics=args.statistics,
            )
        )
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
