"""``repro-lint`` — run the staticcheck rule pack from the command line.

Usage::

    repro-lint src/repro                    # lint a tree, text report
    repro-lint --format json src/repro      # machine-readable
    repro-lint --format github src/repro    # CI inline annotations
    repro-lint --list-rules                 # what can fire
    repro-lint --select UNIT001 file.py     # one rule only
    repro-lint --baseline lint-baseline.json src    # drift gate
    repro-lint --write-baseline lint-baseline.json src  # accept current

Exit status: 0 clean, 1 findings, 2 usage error.  Configuration is
read from the nearest ``pyproject.toml`` (``[tool.repro-lint]``)
unless ``--no-config`` is given; see docs/LINTING.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.staticcheck import (
    Baseline,
    all_rules,
    apply_baseline,
    find_pyproject,
    lint_paths,
    load_config,
    render_github,
    render_json,
    render_text,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="units- and invariant-aware static analysis for the repro tree",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (github emits ::error workflow commands)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--config", type=Path, default=None, help="explicit pyproject.toml to read"
    )
    parser.add_argument(
        "--no-config", action="store_true", help="ignore pyproject.toml configuration"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="JSON",
        help="findings baseline: only findings NOT in this file fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="JSON",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--project-cache",
        type=Path,
        default=None,
        metavar="JSON",
        help="parsed-project cache reused across lint invocations",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program pass (per-file rules only)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by disable comments",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts and pass timings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def _list_rules() -> str:
    rows = []
    for rule_id, cls in sorted(all_rules().items()):
        rows.append(f"{rule_id}  {cls.name:<24} [{cls.scope:<7}] {cls.description}")
    return "\n".join(rows)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    if args.baseline is not None and args.write_baseline is not None:
        print(
            "repro-lint: error: --baseline and --write-baseline are exclusive",
            file=sys.stderr,
        )
        return 2

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        print(f"repro-lint: error: no such path: {missing[0]}", file=sys.stderr)
        return 2

    if args.no_config:
        pyproject = None
    elif args.config is not None:
        if not args.config.is_file():
            print(f"repro-lint: error: config not found: {args.config}", file=sys.stderr)
            return 2
        pyproject = args.config
    else:
        pyproject = find_pyproject(targets[0])
    config = load_config(pyproject)
    if args.select:
        config.select = set(args.select)
    if args.ignore:
        config.ignore |= set(args.ignore)

    unknown = (config.select | config.ignore) - set(all_rules())
    if unknown:
        print(f"repro-lint: error: unknown rule id(s): {sorted(unknown)}", file=sys.stderr)
        return 2

    report = lint_paths(
        list(targets),
        config,
        project_cache=args.project_cache,
        include_project=not args.no_project,
    )

    if args.write_baseline is not None:
        baseline = Baseline.from_report(report)
        baseline.save(args.write_baseline)
        print(
            f"repro-lint: wrote baseline with {len(report.findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    drift = None
    if args.baseline is not None:
        if not args.baseline.is_file():
            print(
                f"repro-lint: error: baseline not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
        baseline = Baseline.load(args.baseline)
        drift = apply_baseline(report, baseline)

    if args.format == "json":
        print(render_json(report, show_suppressed=args.show_suppressed))
    elif args.format == "github":
        print(render_github(report))
    else:
        print(
            render_text(
                report,
                show_suppressed=args.show_suppressed,
                statistics=args.statistics,
            )
        )
    if drift is not None and drift.stale:
        print(
            f"repro-lint: note: {len(drift.stale)} stale baseline entr"
            f"{'y' if len(drift.stale) == 1 else 'ies'} no longer fire(s); "
            f"refresh with --write-baseline",
            file=sys.stderr,
        )
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
