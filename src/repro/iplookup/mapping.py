"""Trie-level → pipeline-stage mapping and per-stage memory sizing.

The paper's architecture (Section V-D) maps each trie level onto one
pipeline stage with an independently accessible memory.  This module
turns a trie's per-level node counts into per-stage memory sizes under
a configurable node encoding, producing the ``M_{i,j}`` values the
power models consume and the pointer/NHI split Fig. 4 plots.

Conventions
-----------
* The root (level 0) is the pipeline's entry register, not a stage.
* Stage ``j`` (0-based) stores the nodes at trie level ``j + 1``.
* A pipeline of ``n_stages`` therefore supports prefixes up to length
  ``n_stages`` — 28 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.iplookup.trie import TrieStats

__all__ = ["NodeFormat", "StageMemoryMap", "map_trie_to_stages", "PAPER_PIPELINE_STAGES"]

#: pipeline depth used throughout the paper's evaluation (Section VI)
PAPER_PIPELINE_STAGES = 28


@dataclass(frozen=True, slots=True)
class NodeFormat:
    """Bit-level encoding of trie nodes in stage memory.

    Attributes
    ----------
    pointer_bits:
        Width of one child pointer.  The paper reads 18-bit words from
        BRAM (Section V-B); an 18-bit pointer addresses 256 K nodes per
        stage, ample for edge tables.
    nhi_bits:
        Width of one next-hop information entry (output port index).
    flag_bits:
        Per-node control flags (valid / leaf markers).
    """

    pointer_bits: int = 18
    nhi_bits: int = 8
    flag_bits: int = 2

    def __post_init__(self) -> None:
        for name in ("pointer_bits", "nhi_bits", "flag_bits"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.pointer_bits == 0:
            raise ConfigurationError("pointer_bits must be positive")

    def internal_node_bits(self) -> int:
        """Memory footprint of one internal (pointer) node."""
        return 2 * self.pointer_bits + self.flag_bits

    def leaf_node_bits(self, nhi_vector_width: int = 1) -> int:
        """Memory footprint of one leaf node.

        For merged virtualization each leaf stores a VNID-indexed
        vector of ``nhi_vector_width`` NHI entries (Section V-D).
        """
        if nhi_vector_width < 1:
            raise ConfigurationError("nhi_vector_width must be >= 1")
        return self.nhi_bits * nhi_vector_width + self.flag_bits


#: the encoding used by all paper-reproduction experiments
DEFAULT_NODE_FORMAT = NodeFormat()


@dataclass(frozen=True)
class StageMemoryMap:
    """Per-stage memory requirement of one lookup engine.

    All arrays have length ``n_stages``; entries are bits.
    """

    n_stages: int
    pointer_bits_per_stage: np.ndarray
    nhi_bits_per_stage: np.ndarray
    nodes_per_stage: np.ndarray
    node_format: NodeFormat
    nhi_vector_width: int

    @property
    def bits_per_stage(self) -> np.ndarray:
        """Total memory bits per stage (pointer + NHI)."""
        return self.pointer_bits_per_stage + self.nhi_bits_per_stage

    @property
    def total_pointer_bits(self) -> int:
        """Total pointer memory across all stages."""
        return int(self.pointer_bits_per_stage.sum())

    @property
    def total_nhi_bits(self) -> int:
        """Total NHI (leaf/forwarding) memory across all stages."""
        return int(self.nhi_bits_per_stage.sum())

    @property
    def total_bits(self) -> int:
        """Total engine memory across all stages."""
        return self.total_pointer_bits + self.total_nhi_bits

    def occupied_stages(self) -> int:
        """Number of stages that hold at least one node."""
        return int((self.nodes_per_stage > 0).sum())

    def widest_stage_bits(self) -> int:
        """Memory size of the largest stage (scalability bottleneck)."""
        return int(self.bits_per_stage.max()) if self.n_stages else 0


def map_trie_to_stages(
    stats: TrieStats,
    n_stages: int | None = PAPER_PIPELINE_STAGES,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
    nhi_vector_width: int = 1,
) -> StageMemoryMap:
    """Size each pipeline stage's memory for a trie.

    Parameters
    ----------
    stats:
        Structural statistics of the trie (or merged trie) to map.
    n_stages:
        Pipeline depth.  Must be at least ``stats.depth`` (the root
        level is not a stage); otherwise the trie cannot be mapped and
        a :class:`ConfigurationError` is raised.  ``None`` sizes the
        pipeline to the trie (``max(stats.depth, 1)`` stages) — real
        RIB snapshots carry /31–/32 more-specifics, so their tries are
        deeper than the paper's 28-stage synthetic tables.
    node_format:
        Bit-level node encoding.
    nhi_vector_width:
        NHI entries per leaf (1 for NV/VS engines, K for a merged
        engine's VNID-indexed leaf vectors).
    """
    if n_stages is None:
        n_stages = max(stats.depth, 1)
    if n_stages < 1:
        raise ConfigurationError(f"n_stages must be >= 1, got {n_stages}")
    if stats.depth > n_stages:
        raise ConfigurationError(
            f"trie depth {stats.depth} exceeds pipeline depth {n_stages}"
        )
    pointer_bits = np.zeros(n_stages, dtype=np.int64)
    nhi_bits = np.zeros(n_stages, dtype=np.int64)
    nodes = np.zeros(n_stages, dtype=np.int64)
    internal_bits = node_format.internal_node_bits()
    leaf_bits = node_format.leaf_node_bits(nhi_vector_width)
    # level 0 (the root) lives in the entry register; levels 1..depth
    # map to stages 0..depth-1.
    for level in range(1, stats.depth + 1):
        stage = level - 1
        n_internal = stats.internal_per_level[level]
        n_leaves = stats.leaves_per_level[level]
        pointer_bits[stage] = n_internal * internal_bits
        nhi_bits[stage] = n_leaves * leaf_bits
        nodes[stage] = n_internal + n_leaves
    return StageMemoryMap(
        n_stages=n_stages,
        pointer_bits_per_stage=pointer_bits,
        nhi_bits_per_stage=nhi_bits,
        nodes_per_stage=nodes,
        node_format=node_format,
        nhi_vector_width=nhi_vector_width,
    )
