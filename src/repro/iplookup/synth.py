"""Synthetic BGP-like routing tables.

The paper evaluates on edge-level routing tables downloaded from
bgp.potaroo.net (largest: 3 725 prefixes whose uni-bit trie has 9 726
nodes, 16 127 after leaf pushing).  That data source is unavailable
offline, so this module generates *structurally* BGP-like tables:

* an empirical prefix-length distribution dominated by /24s with a
  tail of shorter aggregates and a sprinkle of longer-than-/24 routes;
* CIDR-style spatial clustering — prefixes arrive in contiguous runs
  carved out of a modest number of allocation blocks, which is what
  keeps real tables' trie node/prefix ratio low (≈2.6 for the paper's
  table, versus ≈14 for uniformly random /24s).

The power models only consume structural statistics (nodes per level,
leaf/pointer split, overlap between virtual tables), so matching those
statistics — which tests assert — preserves the paper-relevant
behaviour.  See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import RoutingTable
from repro.units import ceil_div

__all__ = [
    "SyntheticTableConfig",
    "generate_table",
    "generate_virtual_tables",
    "PAPER_TABLE_PREFIXES",
    "paper_reference_table",
]

#: size of the paper's reference (largest potaroo edge) table
PAPER_TABLE_PREFIXES = 3725


@dataclass(frozen=True, slots=True)
class SyntheticTableConfig:
    """Parameters of the synthetic table generator.

    Attributes
    ----------
    n_prefixes:
        Target number of distinct prefixes.
    seed:
        PRNG seed; equal configs generate identical tables.
    n_allocation_blocks:
        Number of /16 allocation blocks prefixes are carved from.
        Fewer blocks → more clustering → fewer trie nodes per prefix.
    mean_run_length:
        Mean length of contiguous /24 runs (geometric distribution).
    max_length:
        Longest prefix generated.  Defaults to 28, matching the
        paper's 28-stage pipeline (one trie level per stage).
    aggregate_fraction:
        Fraction of prefixes drawn as short aggregates (/8–/23)
        instead of /24 runs.
    long_fraction:
        Fraction of prefixes drawn as longer-than-/24 routes
        (/25–``max_length``) nested under existing /24s.
    n_next_hops:
        Size of the next-hop table; next hops are uniform over it.
    """

    n_prefixes: int = PAPER_TABLE_PREFIXES
    seed: int = 2012
    n_allocation_blocks: int = 100
    mean_run_length: float = 2.0
    max_length: int = 28
    aggregate_fraction: float = 0.15
    long_fraction: float = 0.12
    n_next_hops: int = 16

    def __post_init__(self) -> None:
        if self.n_prefixes <= 0:
            raise ConfigurationError("n_prefixes must be positive")
        if not 8 <= self.max_length <= 32:
            raise ConfigurationError("max_length must be within 8..32")
        if self.n_allocation_blocks <= 0:
            raise ConfigurationError("n_allocation_blocks must be positive")
        if self.mean_run_length < 1:
            raise ConfigurationError("mean_run_length must be >= 1")
        if not 0 <= self.aggregate_fraction < 1:
            raise ConfigurationError("aggregate_fraction must be in [0, 1)")
        if not 0 <= self.long_fraction < 1:
            raise ConfigurationError("long_fraction must be in [0, 1)")
        if self.aggregate_fraction + self.long_fraction >= 1:
            raise ConfigurationError("aggregate + long fractions must leave room for /24s")
        if self.n_next_hops <= 0:
            raise ConfigurationError("n_next_hops must be positive")


def _allocation_blocks(
    rng: np.random.Generator, config: SyntheticTableConfig, n_blocks: int
) -> np.ndarray:
    """Pick ``n_blocks`` /16 block bases clustered inside a few /8s."""
    n_supernets = max(2, n_blocks // 8)
    supernets = rng.choice(np.arange(1, 223), size=min(n_supernets, 222), replace=False)
    blocks = set()
    while len(blocks) < n_blocks:
        supernet = int(rng.choice(supernets))
        middle = int(rng.integers(0, 256))
        blocks.add((supernet << 24) | (middle << 16))
    return np.array(sorted(blocks), dtype=np.uint64)


def generate_table(
    config: SyntheticTableConfig | None = None, name: str | None = None
) -> RoutingTable:
    """Generate one synthetic BGP-like routing table.

    Deterministic in ``config`` (including its seed).  The returned
    table has exactly ``config.n_prefixes`` distinct prefixes.
    """
    config = config or SyntheticTableConfig()
    rng = np.random.default_rng(config.seed)
    table = RoutingTable(name=name or f"synth-{config.seed}")

    n_aggregate = int(round(config.n_prefixes * config.aggregate_fraction))
    n_long = int(round(config.n_prefixes * config.long_fraction))
    n_runs_target = config.n_prefixes - n_aggregate - n_long

    # scale the allocation pool with demand: each /16 block holds 256
    # distinct /24s, and the run/aggregate loops need headroom to avoid
    # saturating the space (which would never terminate).  The default
    # block count is kept for paper-sized tables so their calibrated
    # statistics are unchanged.
    min_blocks = ceil_div(max(n_runs_target, 1), 170) + ceil_div(n_aggregate + 1, 240)
    n_blocks = max(config.n_allocation_blocks, min_blocks)
    blocks = _allocation_blocks(rng, config, n_blocks)

    def add(prefix: Prefix) -> bool:
        if prefix in table:
            return False
        table.add(prefix, int(rng.integers(0, config.n_next_hops)))
        return True

    # 1. contiguous /24 runs inside allocation blocks --------------------
    added = 0
    stalls = 0
    while added < n_runs_target:
        before = added
        block = int(rng.choice(blocks))
        run_len = min(
            1 + rng.geometric(1.0 / config.mean_run_length),
            n_runs_target - added,
            256,
        )
        start = int(rng.integers(0, 256 - run_len + 1))
        for i in range(run_len):
            prefix = Prefix.normalized(block | ((start + i) << 8), 24)
            if add(prefix):
                added += 1
        stalls = stalls + 1 if added == before else 0
        if stalls > 10_000:
            raise CalibrationError(
                f"run generation saturated after {added}/{n_runs_target} "
                "prefixes; increase n_allocation_blocks"
            )

    # 2. short aggregates (/8–/23), biased towards /16–/22 ---------------
    agg_lengths = np.array([8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23])
    agg_weights = np.array([1, 1, 1, 2, 2, 3, 3, 4, 14, 5, 7, 9, 11, 10, 12, 15], dtype=float)
    agg_weights /= agg_weights.sum()
    added = 0
    stalls = 0
    while added < n_aggregate:
        stalls += 1
        if stalls > 100 * n_aggregate + 10_000:
            raise CalibrationError(
                f"aggregate generation saturated after {added}/{n_aggregate}"
            )
        length = int(rng.choice(agg_lengths, p=agg_weights))
        if length <= 16:
            base = int(rng.choice(blocks))
            value = base & ~((1 << (32 - length)) - 1)
        else:
            base = int(rng.choice(blocks))
            sub = int(rng.integers(0, 1 << (length - 16)))
            value = base | (sub << (32 - length))
        if add(Prefix.normalized(value, length)):
            added += 1

    # 3. longer-than-/24 routes nested under existing /24s ---------------
    existing_24s = [p for p in table.prefixes() if p.length == 24]
    added = 0
    attempts = 0
    while added < n_long and existing_24s and attempts < 50 * n_long + 100:
        attempts += 1
        parent = existing_24s[int(rng.integers(0, len(existing_24s)))]
        length = int(rng.integers(25, config.max_length + 1))
        sub = int(rng.integers(0, 1 << (length - 24)))
        value = parent.value | (sub << (32 - length))
        if add(Prefix.normalized(value, length)):
            added += 1

    # top up with extra /24s if dedup left us short ----------------------
    stalls = 0
    while len(table) < config.n_prefixes:
        block = int(rng.choice(blocks))
        third = int(rng.integers(0, 256))
        if not add(Prefix.normalized(block | (third << 8), 24)):
            stalls += 1
            if stalls > 200_000:
                raise CalibrationError(
                    f"top-up saturated at {len(table)}/{config.n_prefixes} prefixes"
                )

    return table


def paper_reference_table() -> RoutingTable:
    """The calibrated stand-in for the paper's 3 725-prefix table."""
    return generate_table(SyntheticTableConfig(), name="paper-reference")


def generate_virtual_tables(
    k: int,
    shared_fraction: float,
    config: SyntheticTableConfig | None = None,
) -> list[RoutingTable]:
    """Generate ``k`` virtual-network tables with controlled overlap.

    A fraction ``shared_fraction`` of each table's prefixes is drawn
    from a common pool (same prefixes, independently drawn next hops —
    virtual networks share structure, not forwarding decisions); the
    rest is private to the virtual network.  The structural overlap is
    what the merged-trie machinery measures as merging efficiency α.

    Parameters
    ----------
    k:
        Number of virtual networks (≥ 1).
    shared_fraction:
        Fraction of each table drawn from the shared pool, in [0, 1].
    config:
        Per-table generator configuration (size, seed, ...).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ConfigurationError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
    config = config or SyntheticTableConfig()
    n_shared = int(round(config.n_prefixes * shared_fraction))

    pool = generate_table(replace(config, seed=config.seed ^ 0x5EED), name="shared-pool")
    pool_prefixes = pool.prefixes()
    tables: list[RoutingTable] = []
    for vn in range(k):
        rng = np.random.default_rng((config.seed, vn))
        table = RoutingTable(name=f"vn{vn}")
        # shared structural core (per-VN next hops)
        for prefix in pool_prefixes[:n_shared]:
            table.add(prefix, int(rng.integers(0, config.n_next_hops)))
        # private remainder from a per-VN generator
        private = generate_table(
            replace(config, seed=(config.seed * 1000003 + vn + 1) & 0x7FFFFFFF),
            name=f"vn{vn}-private",
        )
        for route in private:
            if len(table) >= config.n_prefixes:
                break
            if route.prefix not in table:
                table.add(route.prefix, route.next_hop)
        tables.append(table)
    return tables


def calibrate_shared_fraction(
    target_alpha: float,
    k: int,
    config: SyntheticTableConfig | None = None,
    *,
    tolerance: float = 0.03,
    max_iterations: int = 12,
) -> float:
    """Find the ``shared_fraction`` whose merged trie hits ``target_alpha``.

    Binary-searches the shared fraction, measuring the *pairwise*
    merging efficiency (see :func:`repro.virt.merged.merge_tries`) of
    the resulting merged trie.  Raises :class:`CalibrationError` if the
    target is unreachable within ``tolerance``.
    """
    # local import: virt depends on iplookup, not vice versa
    from repro.virt.merged import merge_tries

    if k < 2:
        raise CalibrationError("merging efficiency requires k >= 2")
    if not 0.0 < target_alpha < 1.0:
        raise CalibrationError(f"target_alpha must be in (0, 1), got {target_alpha}")
    config = config or SyntheticTableConfig()

    from repro.iplookup.trie import UnibitTrie

    def measure(fraction: float) -> float:
        tables = generate_virtual_tables(k, fraction, config)
        merged = merge_tries([UnibitTrie(t) for t in tables])
        return merged.pairwise_alpha

    lo, hi = 0.0, 1.0
    best_fraction, best_err = 0.5, float("inf")
    for _ in range(max_iterations):
        mid = (lo + hi) / 2
        alpha = measure(mid)
        err = abs(alpha - target_alpha)
        if err < best_err:
            best_fraction, best_err = mid, err
        if err <= tolerance:
            return mid
        if alpha < target_alpha:
            lo = mid
        else:
            hi = mid
    if best_err <= 2 * tolerance:
        return best_fraction
    raise CalibrationError(
        f"could not reach pairwise alpha {target_alpha:.2f} for k={k}: "
        f"best error {best_err:.3f} at shared_fraction={best_fraction:.3f}"
    )
