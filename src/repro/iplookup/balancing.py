"""Memory-balanced trie-to-stage mapping (paper refs [7], [8]).

The naive level-per-stage mapping (:mod:`repro.iplookup.mapping`)
concentrates memory in the mid-depth stages where tries are widest;
the widest stage sets the BRAM output-mux depth and therefore the
achievable clock (:mod:`repro.fpga.timing`).  Jiang & Prasanna's
multi-way pipelining ([7], GLOBECOM'08) balances stage memories by
splitting the trie at a pivot level and mapping each subtrie into the
remaining stages with its own circular offset, so different subtries'
bulky levels land on different stages.

This module implements that scheme: a greedy largest-first offset
assignment over the subtrie depth profiles, producing a
:class:`~repro.iplookup.mapping.StageMemoryMap` whose widest stage —
and hence mux derating — is substantially reduced.  Ablation A11
measures the resulting fmax and mW/Gbps gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.iplookup.mapping import DEFAULT_NODE_FORMAT, NodeFormat, StageMemoryMap
from repro.iplookup.trie import NONE, UnibitTrie

__all__ = ["BalancedMapping", "balanced_stage_map", "balance_factor"]


def balance_factor(stage_map: StageMemoryMap) -> float:
    """Widest-stage bits over mean occupied-stage bits (1 = flat)."""
    bits = np.asarray(stage_map.bits_per_stage, dtype=float)
    occupied = bits[bits > 0]
    if len(occupied) == 0:
        return 1.0
    return float(occupied.max() / occupied.mean())


@dataclass(frozen=True)
class BalancedMapping:
    """A balanced mapping: the stage map plus its provenance."""

    stage_map: StageMemoryMap
    split_level: int
    offsets: tuple[int, ...]
    naive_widest_bits: int

    @property
    def widest_bits(self) -> int:
        """Largest stage memory after balancing."""
        return self.stage_map.widest_stage_bits()

    @property
    def improvement(self) -> float:
        """Widest-stage reduction vs the naive mapping (≥ 1)."""
        if self.widest_bits == 0:
            return 1.0
        return self.naive_widest_bits / self.widest_bits


def _subtrie_profiles(
    trie: UnibitTrie, split_level: int
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Per-level (internal, leaf) counts above the split, and each
    subtrie's depth profile below it.

    Returns ``(upper, profiles)`` where ``upper[level] = (internal,
    leaves)`` for levels 1..split_level, and each profile is an array
    of shape ``(depth_below + 1, 2)`` with (internal, leaf) counts per
    relative depth (0 = the subtrie root itself).
    """
    depth = trie.depth()
    upper = np.zeros((split_level + 1, 2), dtype=np.int64)
    profiles: list[np.ndarray] = []
    max_below = max(0, depth - split_level)

    roots: list[int] = []
    # walk the upper region, collecting counts and subtrie roots
    stack: list[int] = [0]
    while stack:
        node = stack.pop()
        level = trie.level(node)
        is_leaf = trie.is_leaf(node)
        if 1 <= level < split_level:
            upper[level, 1 if is_leaf else 0] += 1
        elif level == split_level:
            roots.append(node)
            continue
        for child in (trie.left(node), trie.right(node)):
            if child != NONE:
                stack.append(child)

    for root in roots:
        profile = np.zeros((max_below + 1, 2), dtype=np.int64)
        stack = [root]
        while stack:
            node = stack.pop()
            rel = trie.level(node) - split_level
            profile[rel, 1 if trie.is_leaf(node) else 0] += 1
            for child in (trie.left(node), trie.right(node)):
                if child != NONE:
                    stack.append(child)
        profiles.append(profile)
    return upper, profiles


def balanced_stage_map(
    trie: UnibitTrie,
    n_stages: int,
    *,
    split_level: int = 8,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
    nhi_vector_width: int = 1,
) -> BalancedMapping:
    """Map ``trie`` onto ``n_stages`` with balanced stage memories.

    Levels 1..``split_level`` map level-per-stage (they are small); the
    subtries rooted at ``split_level`` are assigned circular offsets
    into the remaining stages, largest subtrie first, each offset
    chosen to minimize the running maximum stage load.
    """
    if n_stages < 1:
        raise ConfigurationError("n_stages must be >= 1")
    depth = trie.depth()
    if depth > n_stages:
        raise ConfigurationError(f"trie depth {depth} exceeds pipeline depth {n_stages}")
    if depth == 0:
        # root-only trie: nothing to map (the root is the entry register)
        from repro.iplookup.mapping import map_trie_to_stages

        empty = map_trie_to_stages(trie.stats(), n_stages, node_format, nhi_vector_width)
        return BalancedMapping(
            stage_map=empty, split_level=0, offsets=(), naive_widest_bits=0
        )
    split_level = max(1, min(split_level, depth))
    # levels 1..split_level-1 map level-per-stage onto stages
    # 0..split_level-2; the subtrie region starts at stage
    # split_level-1 (where the subtrie roots at level split_level live
    # in the naive mapping) and spans the rest of the pipeline.
    lower_start = split_level - 1
    lower_stages = n_stages - lower_start
    upper, profiles = _subtrie_profiles(trie, split_level)

    internal_bits = node_format.internal_node_bits()
    leaf_bits = node_format.leaf_node_bits(nhi_vector_width)

    def to_bits(counts: np.ndarray) -> np.ndarray:
        return counts[:, 0] * internal_bits + counts[:, 1] * leaf_bits

    pointer = np.zeros(n_stages, dtype=np.int64)
    nhi = np.zeros(n_stages, dtype=np.int64)
    nodes = np.zeros(n_stages, dtype=np.int64)
    for level in range(1, split_level + 1 if split_level < depth else split_level + 1):
        if level > split_level:
            break
        stage = level - 1
        pointer[stage] += upper[level, 0] * internal_bits if level < len(upper) else 0
        nhi[stage] += upper[level, 1] * leaf_bits if level < len(upper) else 0
        nodes[stage] += upper[level].sum() if level < len(upper) else 0

    # naive reference: every subtrie at offset 0
    naive_load = np.zeros(max(lower_stages, 1), dtype=np.int64)
    for profile in profiles:
        bits = to_bits(profile)
        for rel, b in enumerate(bits):
            naive_load[min(rel, len(naive_load) - 1)] += b
    naive_widest = int(max(naive_load.max(initial=0), pointer.max(), (pointer + nhi).max()))

    offsets: list[int] = []
    if lower_stages > 0 and profiles:
        load = np.zeros(lower_stages, dtype=np.int64)
        ptr_load = np.zeros(lower_stages, dtype=np.int64)
        nhi_load = np.zeros(lower_stages, dtype=np.int64)
        node_load = np.zeros(lower_stages, dtype=np.int64)
        order = sorted(
            range(len(profiles)),
            key=lambda i: int(to_bits(profiles[i]).sum()),
            reverse=True,
        )
        chosen = [0] * len(profiles)
        for index in order:
            profile = profiles[index]
            bits = to_bits(profile)
            best_offset = 0
            best_peak = None
            for offset in range(lower_stages):
                peak = 0
                for rel, b in enumerate(bits):
                    stage = (offset + rel) % lower_stages
                    peak = max(peak, load[stage] + b)
                if best_peak is None or peak < best_peak:
                    best_peak = peak
                    best_offset = offset
            chosen[index] = best_offset
            for rel in range(profile.shape[0]):
                stage = (best_offset + rel) % lower_stages
                load[stage] += bits[rel]
                ptr_load[stage] += profile[rel, 0] * internal_bits
                nhi_load[stage] += profile[rel, 1] * leaf_bits
                node_load[stage] += profile[rel].sum()
        offsets = chosen
        pointer[lower_start:] += ptr_load
        nhi[lower_start:] += nhi_load
        nodes[lower_start:] += node_load

    stage_map = StageMemoryMap(
        n_stages=n_stages,
        pointer_bits_per_stage=pointer,
        nhi_bits_per_stage=nhi,
        nodes_per_stage=nodes,
        node_format=node_format,
        nhi_vector_width=nhi_vector_width,
    )
    return BalancedMapping(
        stage_map=stage_map,
        split_level=split_level,
        offsets=tuple(offsets),
        naive_widest_bits=naive_widest,
    )
