"""Routing-table updates and their cost/power coupling.

The paper's BRAM power model assumes a 1 % write rate — "a low update
rate" (Section V-B) — without deriving it.  This module closes that
loop: it applies BGP-style update streams (announce/withdraw) to a
trie, counts the *memory writes* each update causes (nodes created,
modified or pruned, i.e. stage-memory write operations in the
pipelined engine), and converts an update rate into the effective
write rate the power model consumes.

The update mechanics follow the authors' companion work on
on-the-fly incremental updates for virtualized routers on FPGA
(reference [6] of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.iplookup.prefix import Prefix
from repro.units import mhz_to_hz
from repro.iplookup.rib import RoutingTable
from repro.iplookup.trie import UnibitTrie

__all__ = [
    "UpdateKind",
    "RouteUpdate",
    "UpdateStats",
    "apply_update",
    "apply_updates",
    "synthesize_churn",
    "effective_write_rate",
]


class UpdateKind(enum.Enum):
    """BGP-style update operations."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True, slots=True)
class RouteUpdate:
    """One update: announce (insert/replace) or withdraw a prefix."""

    kind: UpdateKind
    prefix: Prefix
    next_hop: int = 0

    def __post_init__(self) -> None:
        if self.kind is UpdateKind.ANNOUNCE and self.next_hop < 0:
            raise ConfigurationError("announce requires a non-negative next hop")


@dataclass
class UpdateStats:
    """Aggregate cost of an applied update stream.

    ``memory_writes`` counts stage-memory write operations: each node
    created, modified (NHI change) or unlinked is one write to its
    stage's memory — the quantity that becomes the BRAM write rate.
    """

    announces: int = 0
    withdraws: int = 0
    no_ops: int = 0
    nodes_created: int = 0
    nodes_pruned: int = 0
    nhi_changes: int = 0
    _writes_per_update: list[int] = field(default_factory=list)

    @property
    def total_updates(self) -> int:
        """Updates applied, including no-ops."""
        return self.announces + self.withdraws + self.no_ops

    @property
    def memory_writes(self) -> int:
        """Total stage-memory writes caused by the stream."""
        return self.nodes_created + self.nodes_pruned + self.nhi_changes

    def mean_writes_per_update(self) -> float:
        """Average memory writes caused by one update."""
        if not self._writes_per_update:
            return 0.0
        return float(np.mean(self._writes_per_update))

    def max_writes_per_update(self) -> int:
        """Worst single update's memory-write burst."""
        return max(self._writes_per_update, default=0)


def apply_update(trie: UnibitTrie, update: RouteUpdate, stats: UpdateStats) -> None:
    """Apply one update to ``trie``, accounting its cost into ``stats``."""
    nodes_before = trie.num_nodes
    if update.kind is UpdateKind.ANNOUNCE:
        changed = trie.insert(update.prefix, update.next_hop)
        if not changed:
            # re-announcing an identical route touches no memory
            stats.no_ops += 1
            stats._writes_per_update.append(0)
            return
        created = trie.num_nodes - nodes_before
        stats.nodes_created += created
        stats.nhi_changes += 1
        stats.announces += 1  # NHI replacement is still an announce
        stats._writes_per_update.append(created + 1)
    else:
        removed = trie.remove(update.prefix)
        if not removed:
            stats.no_ops += 1
            stats._writes_per_update.append(0)
            return
        pruned = nodes_before - trie.num_nodes
        stats.withdraws += 1
        stats.nodes_pruned += pruned
        stats.nhi_changes += 1
        stats._writes_per_update.append(pruned + 1)


def apply_updates(trie: UnibitTrie, updates: list[RouteUpdate]) -> UpdateStats:
    """Apply an update stream in order; return the aggregate stats."""
    stats = UpdateStats()
    for update in updates:
        apply_update(trie, update, stats)
    return stats


def synthesize_churn(
    table: RoutingTable,
    n_updates: int,
    *,
    withdraw_fraction: float = 0.35,
    new_prefix_fraction: float = 0.25,
    seed: int = 0,
    n_next_hops: int = 16,
) -> list[RouteUpdate]:
    """Generate a BGP-like churn stream against an existing table.

    A mix of next-hop changes on existing prefixes (path changes, the
    most common BGP event), withdrawals of existing prefixes, and
    announcements of new more-specific prefixes.
    """
    if n_updates < 0:
        raise ConfigurationError("n_updates must be non-negative")
    if not 0.0 <= withdraw_fraction <= 1.0 or not 0.0 <= new_prefix_fraction <= 1.0:
        raise ConfigurationError("fractions must be in [0, 1]")
    if withdraw_fraction + new_prefix_fraction > 1.0:
        raise ConfigurationError("withdraw + new-prefix fractions must be <= 1")
    rng = np.random.default_rng(seed)
    prefixes = table.prefixes()
    if not prefixes:
        raise ConfigurationError("cannot synthesize churn against an empty table")
    updates: list[RouteUpdate] = []
    live = list(prefixes)
    for _ in range(n_updates):
        roll = rng.random()
        if roll < withdraw_fraction and live:
            victim = live.pop(int(rng.integers(0, len(live))))
            updates.append(RouteUpdate(UpdateKind.WITHDRAW, victim))
        elif roll < withdraw_fraction + new_prefix_fraction:
            parent = prefixes[int(rng.integers(0, len(prefixes)))]
            if parent.length >= 28:
                updates.append(
                    RouteUpdate(
                        UpdateKind.ANNOUNCE, parent, int(rng.integers(0, n_next_hops))
                    )
                )
                continue
            length = int(rng.integers(parent.length + 1, min(parent.length + 5, 28) + 1))
            sub = int(rng.integers(0, 1 << (length - parent.length)))
            child = Prefix.normalized(
                parent.value | (sub << (32 - length)), length
            )
            updates.append(
                RouteUpdate(UpdateKind.ANNOUNCE, child, int(rng.integers(0, n_next_hops)))
            )
            live.append(child)
        else:
            target = prefixes[int(rng.integers(0, len(prefixes)))]
            updates.append(
                RouteUpdate(UpdateKind.ANNOUNCE, target, int(rng.integers(0, n_next_hops)))
            )
    return updates


def effective_write_rate(
    stats: UpdateStats,
    updates_per_second: float,
    lookup_rate_mhz: float,
    n_stages: int = 28,
) -> float:
    """Convert an update rate into the BRAM write rate of Section V-B.

    A stage memory performs one read per lookup cycle; an update
    stream of ``updates_per_second`` causes
    ``mean_writes_per_update × updates_per_second`` memory writes per
    second, spread over ``n_stages`` stage memories.  The write rate
    is writes per cycle per stage, the unit the paper's 1 % figure is
    expressed in.
    """
    if updates_per_second < 0:
        raise ConfigurationError("updates_per_second must be non-negative")
    if lookup_rate_mhz <= 0:
        raise ConfigurationError("lookup_rate_mhz must be positive")
    if n_stages < 1:
        raise ConfigurationError("n_stages must be >= 1")
    writes_per_second = stats.mean_writes_per_update() * updates_per_second
    writes_per_stage_per_second = writes_per_second / n_stages
    return min(1.0, writes_per_stage_per_second / mhz_to_hz(lookup_rate_mhz))
