"""Multi-bit (stride) trie — an extension beyond the paper's uni-bit trie.

The paper uses the uni-bit trie as "the representative example" but
notes the models generalize to any trie/tree structure (Section V-D).
This module provides a fixed-stride multi-bit trie built by controlled
prefix expansion (CPE, [16] in the paper) so the ablation benches can
quantify the pipeline-depth vs memory trade-off: stride ``s`` divides
the stage count by ``s`` while multiplying node fan-out by ``2^s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, TrieError
from repro.iplookup.rib import NO_ROUTE, RoutingTable

__all__ = ["MultibitTrie", "MultibitStats"]


@dataclass(frozen=True, slots=True)
class MultibitStats:
    """Structural statistics of a multi-bit trie."""

    total_nodes: int
    depth: int
    stride: int
    nodes_per_level: tuple[int, ...]
    entries_per_node: int

    @property
    def total_entries(self) -> int:
        """Total memory entries (node count × fan-out)."""
        return self.total_nodes * self.entries_per_node


class MultibitTrie:
    """Fixed-stride multi-bit trie with leaf-pushed CPE semantics.

    Each node is an array of ``2**stride`` entries; entry ``e`` holds
    either a child node index, or the NHI of the longest prefix ending
    within this node that covers slot ``e`` (leaf pushing happens
    implicitly during insertion via prefix expansion).
    """

    __slots__ = ("stride", "_children", "_nhi", "_level")

    def __init__(self, table: RoutingTable, stride: int = 4):
        if not 1 <= stride <= 8:
            raise ConfigurationError(f"stride must be in 1..8, got {stride}")
        self.stride = stride
        fanout = 1 << stride
        self._children: list[np.ndarray] = [np.full(fanout, -1, dtype=np.int64)]
        self._nhi: list[np.ndarray] = [np.full(fanout, NO_ROUTE, dtype=np.int64)]
        self._level: list[int] = [0]
        # longer prefixes must overwrite shorter ones in the expanded
        # slots, so insert in ascending length order.
        for route in sorted(table, key=lambda r: r.prefix.length):
            self._insert(route.prefix.value, route.prefix.length, route.next_hop)

    def _new_node(self, level: int) -> int:
        fanout = 1 << self.stride
        self._children.append(np.full(fanout, -1, dtype=np.int64))
        self._nhi.append(np.full(fanout, NO_ROUTE, dtype=np.int64))
        self._level.append(level)
        return len(self._children) - 1

    def _padded_width(self) -> int:
        """Address bits padded to a whole number of strides.

        Strides that do not divide 32 (e.g. 3) leave a short final
        chunk; padding the address with zero bits on the right keeps
        every level's chunk extraction uniform.
        """
        levels = -(-32 // self.stride)
        return levels * self.stride

    def _insert(self, value: int, length: int, next_hop: int) -> None:
        if length == 0:
            # default route: expand over the whole root node
            mask = self._nhi[0] == NO_ROUTE
            self._nhi[0][mask] = next_hop
            return
        width = self._padded_width()
        padded = value << (width - 32)
        node = 0
        consumed = 0
        while length - consumed > self.stride:
            chunk = (padded >> (width - consumed - self.stride)) & ((1 << self.stride) - 1)
            child = int(self._children[node][chunk])
            if child < 0:
                child = self._new_node(self._level[node] + 1)
                self._children[node][chunk] = child
            node = child
            consumed += self.stride
        # expand the residual bits over the covered slot range
        residual = length - consumed
        base = (padded >> (width - consumed - self.stride)) & ((1 << self.stride) - 1)
        span = 1 << (self.stride - residual)
        lo = base & ~(span - 1)
        self._nhi[node][lo : lo + span] = next_hop

    @property
    def num_nodes(self) -> int:
        """Total node count including the root."""
        return len(self._children)

    def lookup(self, address: int) -> int:
        """Longest-prefix match by stride-wide chunk walk."""
        width = self._padded_width()
        padded = address << (width - 32)
        node = 0
        consumed = 0
        best = NO_ROUTE
        while consumed < width:
            chunk = (padded >> (width - consumed - self.stride)) & ((1 << self.stride) - 1)
            nhi = int(self._nhi[node][chunk])
            if nhi != NO_ROUTE:
                best = nhi
            child = int(self._children[node][chunk])
            if child < 0:
                break
            node = child
            consumed += self.stride
        return best

    def lookup_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized lookup (one gather per stride level)."""
        width = self._padded_width()
        padded = np.asarray(addresses, dtype=np.uint64) << np.uint64(width - 32)
        children = np.stack(self._children)  # (nodes, fanout)
        nhi = np.stack(self._nhi)
        n = padded.shape[0]
        node = np.zeros(n, dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        best = np.full(n, NO_ROUTE, dtype=np.int64)
        consumed = 0
        while consumed < width and alive.any():
            shift = np.uint64(width - consumed - self.stride)
            chunk = (padded >> shift) & np.uint64((1 << self.stride) - 1)
            chunk = chunk.astype(np.int64)
            found = nhi[node, chunk]
            best = np.where(alive & (found != NO_ROUTE), found, best)
            nxt = children[node, chunk]
            stepping = alive & (nxt >= 0)
            node = np.where(stepping, nxt, node)
            alive = stepping
            consumed += self.stride
        return best

    def depth(self) -> int:
        """Maximum node level (root = 0)."""
        return max(self._level)

    def stats(self) -> MultibitStats:
        """Structural statistics for memory sizing."""
        depth = self.depth()
        per_level = [0] * (depth + 1)
        for level in self._level:
            per_level[level] += 1
        return MultibitStats(
            total_nodes=len(self._children),
            depth=depth,
            stride=self.stride,
            nodes_per_level=tuple(per_level),
            entries_per_node=1 << self.stride,
        )

    def memory_bits(self, entry_bits: int = 20) -> int:
        """Total memory with ``entry_bits`` per expanded slot."""
        if entry_bits <= 0:
            raise TrieError("entry_bits must be positive")
        return self.num_nodes * (1 << self.stride) * entry_bits

    def pipeline_stages(self) -> int:
        """Pipeline depth this trie needs (one level per stage)."""
        return self.depth() + 1
