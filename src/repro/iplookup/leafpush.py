"""Leaf pushing: move all next-hop information to trie leaves.

Leaf pushing ([16] in the paper, Ruiz-Sanchez et al.) rewrites a trie
so that NHI lives only at leaf nodes.  In the pipelined architecture
this removes the "best match so far" register chain: the answer is
simply whatever the final stage reads.  The cost is extra leaf nodes —
the paper's reference table grows from 9 726 to 16 127 nodes.

The transform produces a *full* binary trie: every internal node has
both children, with missing subtrees materialized as leaves carrying
the NHI inherited from the nearest enclosing prefix (``NO_ROUTE`` if
none — the lookup-miss path a real router still has to encode).
"""

from __future__ import annotations

from repro.iplookup.rib import NO_ROUTE
from repro.iplookup.trie import NONE, UnibitTrie

__all__ = ["leaf_push"]


def leaf_push(trie: UnibitTrie) -> UnibitTrie:
    """Return a new, leaf-pushed copy of ``trie``.

    The input trie is not modified.  The output satisfies
    :meth:`UnibitTrie.is_leaf_pushed` and yields identical
    longest-prefix-match results for every address.
    """
    pushed = UnibitTrie(width=trie.width)
    # recursion replaced by an explicit stack: edge tables are shallow
    # (≤ 32 levels) but wide, and Python's default recursion limit is
    # uncomfortably close for adversarial inputs from property tests.
    # Each entry: (src node in input trie, dst node in output, inherited NHI)
    stack: list[tuple[int, int, int]] = [(0, 0, trie.nhi(0))]
    while stack:
        src, dst, inherited = stack.pop()
        own = trie.nhi(src)
        if own != NO_ROUTE:
            inherited = own
        left, right = trie.left(src), trie.right(src)
        if left == NONE and right == NONE:
            # already a leaf: carries the inherited NHI
            pushed._nhi[dst] = inherited
            continue
        # internal node: never carries NHI after pushing; both
        # children must exist (missing side becomes a leaf holding
        # the inherited NHI).
        pushed._nhi[dst] = NO_ROUTE
        level = pushed.level(dst) + 1
        dst_left = pushed._new_node(level)
        pushed._left[dst] = dst_left
        dst_right = pushed._new_node(level)
        pushed._right[dst] = dst_right
        if left != NONE:
            stack.append((left, dst_left, inherited))
        else:
            pushed._nhi[dst_left] = inherited
        if right != NONE:
            stack.append((right, dst_right, inherited))
        else:
            pushed._nhi[dst_right] = inherited
    # prefix bookkeeping: leaves holding a real NHI are the pushed
    # prefix set (used only for stats; lookups never consult it)
    pushed._prefix_count = sum(
        1
        for node in pushed.nodes()
        if pushed.is_leaf(node) and pushed.nhi(node) != NO_ROUTE
    )
    return pushed
