"""Routing table (RIB) container and reference longest-prefix match.

The :class:`RoutingTable` is the input to every trie build in the
library.  It also provides a deliberately simple linear-scan LPM,
:meth:`RoutingTable.lookup_linear`, used as the *oracle* against which
trie and pipeline lookups are verified in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import PrefixError
from repro.iplookup.prefix import Prefix, parse_prefix

__all__ = ["Route", "RoutingTable", "NO_ROUTE"]

#: sentinel next-hop index meaning "no matching route"
NO_ROUTE = -1


@dataclass(frozen=True, slots=True)
class Route:
    """A single RIB entry: destination prefix → next-hop index.

    Next hops are small non-negative integers (indices into a
    next-hop/port table), matching the paper's NHI (next-hop
    information) encoding stored at trie leaves.
    """

    prefix: Prefix
    next_hop: int

    def __post_init__(self) -> None:
        if self.next_hop < 0:
            raise PrefixError(f"next hop must be non-negative, got {self.next_hop}")


@dataclass
class RoutingTable:
    """An ordered, duplicate-free collection of routes.

    Inserting the same prefix twice replaces the next hop (last write
    wins), mirroring FIB update semantics.
    """

    name: str = "rib"
    _routes: dict[Prefix, int] = field(default_factory=dict)

    # -- construction -------------------------------------------------

    @classmethod
    def from_routes(cls, routes: Iterable[Route], name: str = "rib") -> "RoutingTable":
        table = cls(name=name)
        for route in routes:
            table.add(route.prefix, route.next_hop)
        return table

    @classmethod
    def from_strings(
        cls, entries: Iterable[tuple[str, int]], name: str = "rib"
    ) -> "RoutingTable":
        """Build from ``[("10.0.0.0/8", 3), ...]`` pairs."""
        table = cls(name=name)
        for text, next_hop in entries:
            table.add(parse_prefix(text), next_hop)
        return table

    @classmethod
    def parse(cls, text: str, name: str = "rib") -> "RoutingTable":
        """Parse a whitespace-separated ``prefix next_hop`` listing.

        Blank lines and ``#`` comments are ignored — the format of the
        snapshot files shipped with the examples.
        """
        table = cls(name=name)
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise PrefixError(f"{name}:{lineno}: expected 'prefix next_hop', got {line!r}")
            try:
                next_hop = int(parts[1])
            except ValueError as exc:
                raise PrefixError(f"{name}:{lineno}: bad next hop {parts[1]!r}") from exc
            table.add(parse_prefix(parts[0]), next_hop)
        return table

    # -- mutation ------------------------------------------------------

    def add(self, prefix: Prefix, next_hop: int) -> None:
        """Insert or replace the route for ``prefix``."""
        if next_hop < 0:
            raise PrefixError(f"next hop must be non-negative, got {next_hop}")
        self._routes[prefix] = next_hop

    def remove(self, prefix: Prefix) -> None:
        """Withdraw the route for ``prefix`` (KeyError if absent)."""
        del self._routes[prefix]

    # -- access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        for prefix in sorted(self._routes):
            yield Route(prefix, self._routes[prefix])

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def next_hop_of(self, prefix: Prefix) -> int:
        """Exact-match next hop for ``prefix`` (KeyError if absent)."""
        return self._routes[prefix]

    def prefixes(self) -> list[Prefix]:
        """All prefixes in canonical (length, value) order."""
        return sorted(self._routes)

    def routes(self) -> list[Route]:
        """All routes in canonical (length, value) order."""
        return list(self)

    def max_length(self) -> int:
        """Longest mask length present (0 for an empty table)."""
        return max((p.length for p in self._routes), default=0)

    def length_histogram(self) -> np.ndarray:
        """Count of prefixes per mask length.

        Shape ``(33,)`` for IPv4 tables; grows to cover longer masks
        when IPv6 prefixes are present.
        """
        size = max(33, self.max_length() + 1)
        hist = np.zeros(size, dtype=np.int64)
        for prefix in self._routes:
            hist[prefix.length] += 1
        return hist

    def next_hops(self) -> set[int]:
        """The set of distinct next-hop indices used."""
        return set(self._routes.values())

    # -- reference lookup ----------------------------------------------

    def lookup_linear(self, address: int) -> int:
        """Reference longest-prefix match by linear scan.

        O(n) by design: this is the oracle implementation used to
        validate the trie and pipeline engines, so it must stay
        obviously correct rather than fast.
        """
        best_len = -1
        best_nh = NO_ROUTE
        for prefix, next_hop in self._routes.items():
            if prefix.length > best_len and prefix.contains(address):
                best_len = prefix.length
                best_nh = next_hop
        return best_nh

    def lookup_linear_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized linear-scan LPM over many addresses.

        Evaluates every (address, prefix) pair with NumPy broadcasting;
        still O(n·m) work but without the Python-level inner loop, so
        property tests can use large batches cheaply.
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        if not self._routes:
            return np.full(addresses.shape, NO_ROUTE, dtype=np.int64)
        prefixes = list(self._routes)
        values = np.array([p.value for p in prefixes], dtype=np.uint32)
        masks = np.array([p.mask() for p in prefixes], dtype=np.uint32)
        lengths = np.array([p.length for p in prefixes], dtype=np.int64)
        hops = np.array([self._routes[p] for p in prefixes], dtype=np.int64)
        # matches[i, j] — does prefix j contain address i?
        matches = (addresses[:, None] & masks[None, :]) == values[None, :]
        # pick the longest matching prefix per address
        scored = np.where(matches, lengths[None, :], -1)
        best = scored.argmax(axis=1)
        result = hops[best]
        result[scored[np.arange(len(addresses)), best] < 0] = NO_ROUTE
        return result

    # -- serialization ---------------------------------------------------

    def dumps(self) -> str:
        """Serialize to the text format accepted by :meth:`parse`."""
        lines = [f"# routing table {self.name}: {len(self)} prefixes"]
        lines.extend(f"{route.prefix} {route.next_hop}" for route in self)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_file(cls, path: str, name: str | None = None) -> "RoutingTable":
        """Load a table from a ``prefix next_hop`` text file.

        The format matches BGP snapshot exports the paper's potaroo
        tables would be converted to; see ``examples/data/``.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return cls.parse(text, name=name or path)

    def to_file(self, path: str) -> None:
        """Write the table in the :meth:`from_file` format."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
