"""Uni-bit (binary) trie for longest-prefix match.

The paper maps one trie level to one pipeline stage (Section V-D), so
the trie is the structure from which all per-stage memory statistics
derive.  Nodes are stored in parallel arrays (structure-of-arrays)
rather than linked objects: child links are integer indices, which
keeps builds allocation-light and lets batch lookups run as NumPy
gather loops over levels — 32 vectorized steps instead of a Python
loop per packet (see the HPC guide on vectorizing for-loops).

Node index 0 is always the root.  A node is a *leaf* when it has no
children; next-hop information (NHI) may sit on any node in a plain
trie, and only on leaves after :func:`repro.iplookup.leafpush.leaf_push`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import TrieError
from repro.iplookup.prefix import Prefix
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.obs.registry import REGISTRY

__all__ = ["UnibitTrie", "TrieStats", "FrozenWalk", "NONE"]

#: sentinel child index meaning "no child"
NONE = -1


@dataclass(frozen=True, slots=True)
class FrozenWalk:
    """Immutable structure-of-arrays snapshot of a trie's lookup state.

    Built once by :meth:`UnibitTrie._freeze` (and dropped on any
    mutating insert/remove); every array is laid out so the batch walk
    is one gather per level with no per-call setup:

    * ``childflat`` — child indices indexed ``(node << 1) | bit``;
      a missing child self-loops, so a lane whose walk terminated
      parks on its last real node and needs no masking;
    * ``best`` — per node, the NHI of the nearest ancestor-or-self
      carrying one (the LPM answer for any lane parked there);
    * ``levels`` — per node depth, which doubles as the walk depth of
      a parked lane;
    * ``jump`` — a ``2^jump_stride``-entry direct index over the top
      address bits resolving the first ``jump_stride`` levels in one
      gather (the :class:`~repro.virt.merged.MergedTrie` root jump
      table, generalized to non-leaf-pushed tries).
    """

    left: np.ndarray
    right: np.ndarray
    nhi: np.ndarray
    levels: np.ndarray
    childflat: np.ndarray
    best: np.ndarray
    jump: np.ndarray
    jump_stride: int
    depth: int


@dataclass(frozen=True, slots=True)
class TrieStats:
    """Structural statistics of a trie.

    These are the quantities the paper reports for its reference
    routing table (Section V-E): total node count, and the split into
    pointer (non-leaf) and NHI (leaf) nodes that drives the Fig. 4
    memory accounting.
    """

    total_nodes: int
    internal_nodes: int
    leaf_nodes: int
    depth: int
    prefixes: int
    nodes_per_level: tuple[int, ...]
    internal_per_level: tuple[int, ...]
    leaves_per_level: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.internal_nodes + self.leaf_nodes != self.total_nodes:
            raise TrieError("internal + leaf node counts must equal total")


class UnibitTrie:
    """Array-backed binary trie supporting LPM lookup.

    Parameters
    ----------
    table:
        Optional routing table inserted at construction.
    width:
        Address width in bits: 32 for IPv4 (default), 128 for the
        IPv6 extension.  The vectorized batch lookup requires
        ``width <= 32`` (NumPy word size); wider tries fall back to
        scalar walks.
    """

    #: root-stride of the frozen jump table (capped at the trie depth)
    JUMP_STRIDE = 16

    __slots__ = (
        "_left",
        "_right",
        "_nhi",
        "_level",
        "_prefix_count",
        "_frozen",
        "_free",
        "width",
    )

    def __init__(self, table: RoutingTable | None = None, *, width: int = 32):
        if width < 1:
            raise TrieError(f"address width must be positive, got {width}")
        self.width = width
        self._left: list[int] = [NONE]
        self._right: list[int] = [NONE]
        self._nhi: list[int] = [NO_ROUTE]
        self._level: list[int] = [0]
        self._prefix_count = 0
        self._frozen: FrozenWalk | None = None
        # indices of withdrawn (unlinked) nodes available for reuse —
        # route withdrawal recycles storage instead of compacting
        self._free: list[int] = []
        if table is not None:
            for route in table:
                self.insert(route.prefix, route.next_hop)

    # -- construction --------------------------------------------------

    def _new_node(self, level: int) -> int:
        if self._free:
            node = self._free.pop()
            self._left[node] = NONE
            self._right[node] = NONE
            self._nhi[node] = NO_ROUTE
            self._level[node] = level
            return node
        self._left.append(NONE)
        self._right.append(NONE)
        self._nhi.append(NO_ROUTE)
        self._level.append(level)
        return len(self._left) - 1

    def insert(self, prefix: Prefix, next_hop: int) -> bool:
        """Insert ``prefix`` → ``next_hop``; re-insertion overwrites.

        Returns True when the trie actually changed — nodes were
        created or the stored NHI value differs.  Re-announcing an
        identical route is a no-op and leaves the frozen lookup
        arrays (and anything cached on top of them, e.g. the merged
        view in :class:`repro.virt.manager.VirtualRouterManager`)
        valid.
        """
        if next_hop < 0:
            raise TrieError(f"next hop must be non-negative, got {next_hop}")
        if prefix.length > self.width:
            raise TrieError(
                f"prefix length {prefix.length} exceeds trie width {self.width}"
            )
        node = 0
        created = False
        for level in range(prefix.length):
            bit = prefix.bit(level)
            children = self._right if bit else self._left
            child = children[node]
            if child == NONE:
                child = self._new_node(level + 1)
                children[node] = child
                created = True
            node = child
        if self._nhi[node] == NO_ROUTE:
            self._prefix_count += 1
        changed = created or self._nhi[node] != next_hop
        if changed:
            self._frozen = None
        self._nhi[node] = next_hop
        return changed

    def remove(self, prefix: Prefix) -> bool:
        """Withdraw ``prefix``; prune chain nodes it no longer needs.

        Returns True if the prefix was present.  Pruned nodes are
        recycled by later insertions (BGP churn does not grow the
        structure unboundedly).
        """
        path: list[int] = [0]
        node = 0
        for level in range(prefix.length):
            bit = prefix.bit(level)
            node = self._right[node] if bit else self._left[node]
            if node == NONE:
                return False
            path.append(node)
        if self._nhi[node] == NO_ROUTE:
            return False
        self._frozen = None
        self._nhi[node] = NO_ROUTE
        self._prefix_count -= 1
        # prune upward: drop nodes that are now childless and carry no NHI
        for depth in range(len(path) - 1, 0, -1):
            child = path[depth]
            if not self.is_leaf(child) or self._nhi[child] != NO_ROUTE:
                break
            parent = path[depth - 1]
            if self._left[parent] == child:
                self._left[parent] = NONE
            else:
                self._right[parent] = NONE
            self._free.append(child)
        return True

    # -- structure access ----------------------------------------------

    def __len__(self) -> int:
        return len(self._left) - len(self._free)

    @property
    def num_nodes(self) -> int:
        """Live node count including the root."""
        return len(self._left) - len(self._free)

    @property
    def num_prefixes(self) -> int:
        """Number of distinct prefixes inserted."""
        return self._prefix_count

    def left(self, node: int) -> int:
        """Index of the 0-child of ``node`` (``NONE`` if absent)."""
        return self._left[node]

    def right(self, node: int) -> int:
        """Index of the 1-child of ``node`` (``NONE`` if absent)."""
        return self._right[node]

    def nhi(self, node: int) -> int:
        """Next-hop stored at ``node`` (``NO_ROUTE`` if none)."""
        return self._nhi[node]

    def level(self, node: int) -> int:
        """Depth of ``node`` (root = 0)."""
        return self._level[node]

    def is_leaf(self, node: int) -> bool:
        """True if ``node`` has no children."""
        return self._left[node] == NONE and self._right[node] == NONE

    def nodes(self) -> range:
        """All *allocated* node slots (root first; otherwise unordered).

        After withdrawals this range may include recycled-but-free
        slots (unlinked, NHI-less leaves); positional consumers like
        the merged-trie gather arrays rely on the allocated range
        being stable.  Use :meth:`live_nodes` to visit only reachable
        nodes.
        """
        return range(len(self._left))

    def live_nodes(self) -> Iterator[int]:
        """Preorder iterator over nodes reachable from the root."""
        for node, _, _ in self.walk_paths():
            yield node

    def walk_paths(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(node, path_value, level)`` in preorder.

        ``path_value`` is the node's path from the root packed into
        the high bits of a 32-bit word, i.e. the network address of
        the prefix the node represents.  Used by the merge machinery
        to identify structurally common nodes.
        """
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            node, path = stack.pop()
            level = self._level[node]
            yield node, path, level
            right = self._right[node]
            if right != NONE:
                stack.append((right, path | (1 << (self.width - 1 - level))))
            left = self._left[node]
            if left != NONE:
                stack.append((left, path))

    # -- lookup ----------------------------------------------------------

    def lookup(self, address: int) -> int:
        """Longest-prefix-match ``address``, returning the NHI.

        Walks the trie bit by bit remembering the last node that held
        NHI — exactly the traversal a pipeline stage sequence performs.
        """
        return self._walk_scalar(address)[1]

    def _freeze(self) -> FrozenWalk:
        if self._frozen is None:
            left = np.asarray(self._left, dtype=np.int64)
            right = np.asarray(self._right, dtype=np.int64)
            nhi = np.asarray(self._nhi, dtype=np.int64)
            levels = np.asarray(self._level, dtype=np.int64)
            n = len(left)
            identity = np.arange(n, dtype=np.int64)
            # parent pointers (root and freed slots point at themselves)
            parent = identity.copy()
            has_left = left != NONE
            parent[left[has_left]] = identity[has_left]
            has_right = right != NONE
            parent[right[has_right]] = identity[has_right]
            # best[node] = nearest ancestor-or-self NHI, propagated one
            # level at a time (a child's parent is always one level up,
            # so each level's gather reads already-final values).
            depth = self.depth()
            best = nhi.copy()
            order = np.argsort(levels, kind="stable")
            starts = np.searchsorted(levels[order], np.arange(depth + 2))
            for lvl in range(1, depth + 1):
                at = order[starts[lvl] : starts[lvl + 1]]
                own = nhi[at]
                best[at] = np.where(own != NO_ROUTE, own, best[parent[at]])
            # child targets: a childless node self-loops (parking is
            # safe — no bit can leave it), but a node with exactly one
            # child must NOT self-loop on its missing side, or a later
            # address bit would un-park the lane into the live child.
            # Each such slot gets a dedicated parked node carrying the
            # parent's level/best; parked nodes self-loop both ways.
            # A full (leaf-pushed) trie has no such slots, so its
            # childflat is exactly the merged-engine layout.
            childless = (left == NONE) & (right == NONE)
            lx = np.where(left == NONE, identity, left)
            rx = np.where(right == NONE, identity, right)
            miss_left = np.flatnonzero((left == NONE) & ~childless)
            miss_right = np.flatnonzero((right == NONE) & ~childless)
            parked_parents = np.concatenate([miss_left, miss_right])
            m = len(parked_parents)
            parked = n + np.arange(m, dtype=np.int64)
            lx[miss_left] = parked[: len(miss_left)]
            rx[miss_right] = parked[len(miss_left) :]
            childflat = np.empty(2 * (n + m), dtype=np.int64)
            childflat[0 : 2 * n : 2] = lx
            childflat[1 : 2 * n : 2] = rx
            childflat[2 * n :: 2] = parked
            childflat[2 * n + 1 :: 2] = parked
            levels_walk = np.concatenate([levels, levels[parked_parents]])
            best_walk = np.concatenate([best, best[parked_parents]])
            # jump table over the top stride bits: entry p is the node
            # reached (or parked on) after walking bit pattern p.
            stride = min(self.JUMP_STRIDE, depth)
            patterns = np.arange(1 << stride, dtype=np.int64)
            jump = np.zeros(1 << stride, dtype=np.int64)
            for lvl in range(stride):
                bits = (patterns >> (stride - 1 - lvl)) & 1
                jump = childflat[(jump << 1) | bits]
            self._frozen = FrozenWalk(
                left=left,
                right=right,
                nhi=nhi,
                levels=levels_walk,
                childflat=childflat,
                best=best_walk,
                jump=jump,
                jump_stride=stride,
                depth=depth,
            )
        return self._frozen

    def freeze(self) -> FrozenWalk:
        """Build (or return) the frozen structure-of-arrays walk state.

        The serving layer calls this at service build time so the
        first served batch does not pay the freeze cost; any mutating
        :meth:`insert`/:meth:`remove` afterwards invalidates the
        snapshot and the next batch re-freezes transparently.
        """
        return self._freeze()

    def _walk_scalar(self, address: int) -> tuple[int, int]:
        """Scalar walk returning ``(depth, result)`` for one address."""
        node = 0
        best = self._nhi[0]
        level = 0
        while level < self.width:
            bit = (address >> (self.width - 1 - level)) & 1
            node = self._right[node] if bit else self._left[node]
            if node == NONE:
                break
            level += 1
            if self._nhi[node] != NO_ROUTE:
                best = self._nhi[node]
        return level, best

    def walk_batch(self, addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized walk: per-address depth reached and LPM result.

        Runs over the :class:`FrozenWalk` snapshot: the root jump
        table resolves the first ``jump_stride`` levels with a single
        gather, every remaining level is one gather over the flat
        self-looping child array, and the per-lane depth and LPM
        answer come from two final gathers (``levels`` / ``best``) —
        no per-call array setup and no per-level masking.  The depth
        is the number of levels the walk descended — the quantity the
        pipeline simulator converts into per-stage memory accesses.
        Tries wider than 32 bits (the IPv6 extension) fall back to
        scalar walks — their addresses exceed the NumPy word size.
        """
        if self.width > 32:
            n = len(addresses)
            depths6 = np.zeros(n, dtype=np.int64)
            results6 = np.empty(n, dtype=np.int64)
            for i, a in enumerate(addresses):
                depths6[i], results6[i] = self._walk_scalar(int(a))
            if REGISTRY.enabled:
                REGISTRY.counter(
                    "repro_trie_node_visits_total",
                    "Trie nodes touched by batch walks (root included)",
                    labels=("structure",),
                ).labels("unibit").inc(int(depths6.sum()) + n)
            return depths6, results6
        frozen = self._freeze()
        addresses = np.asarray(addresses, dtype=np.uint32)
        addr64 = addresses.astype(np.int64)
        stride = frozen.jump_stride
        if stride:
            node = frozen.jump[addr64 >> (self.width - stride)]
        else:
            node = np.zeros(len(addresses), dtype=np.int64)
        childflat = frozen.childflat
        for lvl in range(stride, frozen.depth):
            node = childflat[(node << 1) | ((addr64 >> (self.width - 1 - lvl)) & 1)]
        depths = frozen.levels[node]
        best = frozen.best[node]
        if REGISTRY.enabled:  # one branch per batch; zero overhead off
            REGISTRY.counter(
                "repro_trie_node_visits_total",
                "Trie nodes touched by batch walks (root included)",
                labels=("structure",),
            ).labels("unibit").inc(int(depths.sum()) + len(addresses))
        return depths, best

    def lookup_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized LPM over an array of addresses.

        Shares the level-synchronous walk of :meth:`walk_batch`
        (discarding the depths).
        """
        return self.walk_batch(addresses)[1]

    # -- statistics ------------------------------------------------------

    def depth(self) -> int:
        """Maximum *reachable* node level."""
        return max(self._level[node] for node in self.live_nodes())

    def stats(self) -> TrieStats:
        """Compute structural statistics over reachable nodes."""
        levels = [self._level[node] for node in self.live_nodes()]
        depth = max(levels)
        nodes_per = [0] * (depth + 1)
        internal_per = [0] * (depth + 1)
        leaves_per = [0] * (depth + 1)
        internal = 0
        total = 0
        for node in self.live_nodes():
            lvl = self._level[node]
            total += 1
            nodes_per[lvl] += 1
            if self.is_leaf(node):
                leaves_per[lvl] += 1
            else:
                internal_per[lvl] += 1
                internal += 1
        return TrieStats(
            total_nodes=total,
            internal_nodes=internal,
            leaf_nodes=total - internal,
            depth=depth,
            prefixes=self._prefix_count,
            nodes_per_level=tuple(nodes_per),
            internal_per_level=tuple(internal_per),
            leaves_per_level=tuple(leaves_per),
        )

    def is_leaf_pushed(self) -> bool:
        """True if NHI only appears on leaves and the trie is full.

        A *full* binary trie (every internal node has both children)
        with NHI confined to leaves is the postcondition of
        :func:`repro.iplookup.leafpush.leaf_push`.
        """
        for node in self.nodes():
            leaf = self.is_leaf(node)
            if leaf:
                continue
            if self._nhi[node] != NO_ROUTE:
                return False
            if self._left[node] == NONE or self._right[node] == NONE:
                return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TrieError` if broken.

        Invariants: child levels are parent level + 1, every reachable
        non-root node is referenced exactly once, no child index is
        out of range, and freed slots are never referenced.
        """
        n = len(self._left)
        free = set(self._free)
        ref_count = [0] * n
        reachable = set()
        for node in self.live_nodes():
            reachable.add(node)
            for child in (self._left[node], self._right[node]):
                if child == NONE:
                    continue
                if not 0 <= child < n:
                    raise TrieError(f"child index {child} out of range at node {node}")
                if child in free:
                    raise TrieError(f"node {node} references freed slot {child}")
                if self._level[child] != self._level[node] + 1:
                    raise TrieError(
                        f"level mismatch: node {node} (level {self._level[node]}) "
                        f"→ child {child} (level {self._level[child]})"
                    )
                ref_count[child] += 1
        if ref_count[0] != 0:
            raise TrieError("root must not be referenced as a child")
        for node in reachable:
            if node != 0 and ref_count[node] != 1:
                raise TrieError(f"node {node} referenced {ref_count[node]} times")
        if free & reachable:
            raise TrieError(f"freed slots reachable from root: {sorted(free & reachable)}")
        if len(reachable) + len(free) != n:
            raise TrieError(
                f"{n - len(reachable) - len(free)} slots leaked "
                "(neither reachable nor on the free list)"
            )
