"""IPv6 prefixes — the future-work extension.

The paper is IPv4-only, but its motivation (Internet growth) and its
models generalize: an IPv6 uni-bit trie simply has more levels, so a
virtualized IPv6 engine needs a deeper pipeline (more logic power) and
longer chains (more memory).  :class:`Prefix6` mirrors
:class:`repro.iplookup.prefix.Prefix` at 128 bits; parsing/formatting
use the standard library's :mod:`ipaddress`.

A synthetic IPv6 edge-table generator lives here too: real IPv6 edge
tables are dominated by /48 customer delegations under a few /32
provider allocations, with /64s below and short aggregates above.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from functools import total_ordering

import numpy as np

from repro.errors import ConfigurationError, PrefixError
from repro.iplookup.rib import RoutingTable

__all__ = ["Prefix6", "parse_prefix6", "Synthetic6Config", "generate_table6"]

_MAX128 = (1 << 128) - 1


@total_ordering
@dataclass(frozen=True, slots=True)
class Prefix6:
    """An IPv6 prefix ``value/length`` with host bits forced to zero."""

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 128:
            raise PrefixError(f"prefix length out of range: {self.length}")
        if not 0 <= self.value <= _MAX128:
            raise PrefixError("prefix value out of 128-bit range")
        if self.value & ~self.mask() & _MAX128:
            raise PrefixError("host bits set; use Prefix6.normalized()")

    @staticmethod
    def normalized(value: int, length: int) -> "Prefix6":
        """Build a prefix, clearing any host bits in ``value``."""
        if not 0 <= length <= 128:
            raise PrefixError(f"prefix length out of range: {length}")
        mask = (_MAX128 << (128 - length)) & _MAX128 if length else 0
        return Prefix6(value & mask, length)

    def mask(self) -> int:
        """The 128-bit network mask."""
        return (_MAX128 << (128 - self.length)) & _MAX128 if self.length else 0

    def contains(self, address: int) -> bool:
        """True if ``address`` (128-bit int) falls inside this prefix."""
        return (address & self.mask()) == self.value

    def bit(self, level: int) -> int:
        """The bit consumed at trie ``level`` (0 = most significant)."""
        if not 0 <= level < 128:
            raise PrefixError(f"bit level out of range: {level}")
        return (self.value >> (127 - level)) & 1

    def __lt__(self, other: "Prefix6") -> bool:
        if not isinstance(other, Prefix6):
            return NotImplemented
        return (self.length, self.value) < (other.length, other.value)

    def __str__(self) -> str:
        return f"{ipaddress.IPv6Address(self.value)}/{self.length}"


def parse_prefix6(text: str) -> Prefix6:
    """Parse ``"2001:db8::/32"`` (or a bare address, meaning /128)."""
    text = text.strip()
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise PrefixError(f"malformed prefix length: {text!r}")
        length = int(len_text)
    else:
        addr_text, length = text, 128
    try:
        value = int(ipaddress.IPv6Address(addr_text))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise PrefixError(f"malformed IPv6 address: {text!r}") from exc
    return Prefix6.normalized(value, length)


@dataclass(frozen=True, slots=True)
class Synthetic6Config:
    """Parameters of the synthetic IPv6 edge-table generator."""

    n_prefixes: int = 3725
    seed: int = 2012
    n_provider_blocks: int = 24  # /32 allocations
    max_length: int = 64

    def __post_init__(self) -> None:
        if self.n_prefixes <= 0:
            raise ConfigurationError("n_prefixes must be positive")
        if self.n_provider_blocks <= 0:
            raise ConfigurationError("n_provider_blocks must be positive")
        if not 48 <= self.max_length <= 128:
            raise ConfigurationError("max_length must be within 48..128")


def generate_table6(config: Synthetic6Config | None = None) -> RoutingTable:
    """Generate a synthetic IPv6 edge table (mostly /48s under /32s)."""
    config = config or Synthetic6Config()
    rng = np.random.default_rng(config.seed)
    table = RoutingTable(name=f"synth6-{config.seed}")
    # provider /32s inside 2000::/3 global unicast space
    providers = []
    seen = set()
    while len(providers) < config.n_provider_blocks:
        top = 0x2000 | int(rng.integers(0, 0x1000)) & 0x1FFF
        second = int(rng.integers(0, 1 << 16))
        base = (top << 112) | (second << 96)
        if base not in seen:
            seen.add(base)
            providers.append(base)

    n_aggregates = max(1, config.n_prefixes // 20)  # ~5 % short aggregates
    n_long = config.n_prefixes // 10  # ~10 % /56–/64 below /48s
    n_48s = config.n_prefixes - n_aggregates - n_long

    def add(prefix: Prefix6) -> bool:
        if prefix in table:
            return False
        table.add(prefix, int(rng.integers(0, 16)))
        return True

    added = 0
    while added < n_48s:
        base = providers[int(rng.integers(0, len(providers)))]
        site = int(rng.integers(0, 1 << 16))
        if add(Prefix6.normalized(base | (site << 80), 48)):
            added += 1
    added = 0
    while added < n_aggregates:
        base = providers[int(rng.integers(0, len(providers)))]
        length = int(rng.choice([32, 36, 40, 44]))
        sub = int(rng.integers(0, 1 << (length - 32)))
        if add(Prefix6.normalized(base | (sub << (128 - length)), length)):
            added += 1
    added = 0
    forty_eights = [p for p in table.prefixes() if p.length == 48]
    while added < n_long and forty_eights:
        parent = forty_eights[int(rng.integers(0, len(forty_eights)))]
        length = int(rng.integers(56, config.max_length + 1))
        sub = int(rng.integers(0, 1 << (length - 48)))
        if add(Prefix6.normalized(parent.value | (sub << (128 - length)), length)):
            added += 1
    return table
