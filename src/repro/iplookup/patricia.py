"""Path-compressed (PATRICIA-style) trie.

The paper's survey reference [16] (Ruiz-Sanchez et al.) covers path
compression as the classic alternative to leaf pushing for shrinking
sparse tries: single-child chains with no routing information collapse
into one edge labeled with the skipped bits.  The pipelined mapping
changes accordingly — a packet consumes a whole label per stage — so
path compression trades *node count* (memory) against *variable
per-stage work*, the comparison ablation A10 quantifies.

Nodes are array-backed like :class:`~repro.iplookup.trie.UnibitTrie`;
each child edge carries a label of up to 32 skipped bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrieError
from repro.iplookup.rib import NO_ROUTE, RoutingTable
from repro.iplookup.trie import NONE, UnibitTrie

__all__ = ["PatriciaTrie", "PatriciaStats"]


@dataclass(frozen=True, slots=True)
class PatriciaStats:
    """Structural statistics of a path-compressed trie."""

    total_nodes: int
    internal_nodes: int
    leaf_nodes: int
    max_label_bits: int
    total_label_bits: int
    depth_nodes: int

    def memory_bits(self, pointer_bits: int = 18, nhi_bits: int = 8) -> int:
        """Memory under the node encoding of ablation A10.

        Each node stores two child pointers, each with a 5-bit label
        length and the label bits themselves (inline, worst-case field
        of 32 bits is avoided by storing actual label lengths), plus
        an NHI slot.
        """
        per_node_fixed = 2 * (pointer_bits + 5) + nhi_bits
        return self.total_nodes * per_node_fixed + self.total_label_bits


class PatriciaTrie:
    """Path-compressed binary trie built from a routing table.

    Construction compresses a plain uni-bit trie: maximal chains of
    single-child, NHI-less nodes become one labeled edge.
    """

    __slots__ = (
        "_child",
        "_label_len",
        "_label",
        "_nhi",
        "_depth",
        "_frozen",
    )

    def __init__(self, table: RoutingTable):
        plain = UnibitTrie(table)
        # per node: [left_child, right_child], label length/value per edge
        self._child: list[list[int]] = [[NONE, NONE]]
        self._label_len: list[list[int]] = [[0, 0]]
        self._label: list[list[int]] = [[0, 0]]
        self._nhi: list[int] = [plain.nhi(0)]
        self._depth = 0
        self._build(plain)
        # the trie is immutable after construction (no insert/remove
        # API), so the batch-lookup arrays freeze once, here.
        self._frozen = {
            "child": np.asarray(self._child, dtype=np.int64),
            "label_len": np.asarray(self._label_len, dtype=np.int64),
            "label": np.asarray(self._label, dtype=np.uint64),
            "nhi": np.asarray(self._nhi, dtype=np.int64),
        }

    def _new_node(self, nhi: int) -> int:
        self._child.append([NONE, NONE])
        self._label_len.append([0, 0])
        self._label.append([0, 0])
        self._nhi.append(nhi)
        return len(self._nhi) - 1

    def _build(self, plain: UnibitTrie) -> None:
        # stack: (plain node, compressed parent, edge side, label bits so far)
        stack: list[tuple[int, int, int, int, int, int]] = []
        for side, child in ((0, plain.left(0)), (1, plain.right(0))):
            if child != NONE:
                stack.append((child, 0, side, side, 1, 1))
        max_depth = 0
        while stack:
            node, parent, side, label, label_len, depth = stack.pop()
            left, right = plain.left(node), plain.right(node)
            nhi = plain.nhi(node)
            is_chain = nhi == NO_ROUTE and (left == NONE) != (right == NONE)
            if is_chain and label_len < 32:
                # absorb this node into the edge label
                nxt, bit = (left, 0) if left != NONE else (right, 1)
                stack.append(
                    (nxt, parent, side, (label << 1) | bit, label_len + 1, depth)
                )
                continue
            compressed = self._new_node(nhi)
            self._child[parent][side] = compressed
            self._label_len[parent][side] = label_len
            self._label[parent][side] = label
            max_depth = max(max_depth, depth)
            for child_side, child in ((0, left), (1, right)):
                if child != NONE:
                    stack.append(
                        (child, compressed, child_side, child_side, 1, depth + 1)
                    )
        self._depth = max_depth

    # -- access ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Compressed node count (root included)."""
        return len(self._nhi)

    def lookup(self, address: int) -> int:
        """Longest-prefix match, verifying skipped bits on each edge."""
        best = self._nhi[0] if self._nhi[0] != NO_ROUTE else NO_ROUTE
        node = 0
        consumed = 0
        while consumed < 32:
            side = (address >> (31 - consumed)) & 1
            child = self._child[node][side]
            if child == NONE:
                break
            length = self._label_len[node][side]
            if consumed + length > 32:
                break
            shift = 32 - consumed - length
            window = (address >> shift) & ((1 << length) - 1)
            if window != self._label[node][side]:
                break  # skipped bits mismatch: no deeper prefix matches
            node = child
            consumed += length
            if self._nhi[node] != NO_ROUTE:
                best = self._nhi[node]
        return best

    def lookup_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized batch lookup via a level-synchronous walk.

        Compression means lanes consume *different* numbers of address
        bits per step, so each lane carries its own ``consumed``
        counter; one iteration advances every live lane by one edge
        (node fetch, label-window compare, best-NHI update).  Each
        live step consumes at least one bit, so the loop runs at most
        32 iterations regardless of lane skew.
        """
        addresses = np.asarray(addresses, dtype=np.uint32).astype(np.uint64)
        n = addresses.shape[0]
        child = self._frozen["child"]
        label_len = self._frozen["label_len"]
        label = self._frozen["label"]
        nhi = self._frozen["nhi"]
        node = np.zeros(n, dtype=np.int64)
        consumed = np.zeros(n, dtype=np.int64)
        best = np.full(n, nhi[0], dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        one = np.uint64(1)
        while alive.any():
            side = (
                (addresses >> np.where(alive, 31 - consumed, 0).astype(np.uint64)) & one
            ).astype(np.int64)
            edge_child = child[node, side]
            edge_len = label_len[node, side]
            ok = alive & (edge_child != NONE) & (consumed + edge_len <= 32)
            # compare the skipped-bit window against the edge label
            shift = np.where(ok, 32 - consumed - edge_len, 0).astype(np.uint64)
            mask = (one << edge_len.astype(np.uint64)) - one
            ok &= ((addresses >> shift) & mask) == label[node, side]
            node = np.where(ok, edge_child, node)
            consumed = np.where(ok, consumed + edge_len, consumed)
            found = nhi[node]
            best = np.where(ok & (found != NO_ROUTE), found, best)
            alive = ok & (consumed < 32)
        return best

    def stats(self) -> PatriciaStats:
        """Structural statistics for the A10 memory comparison."""
        internal = 0
        max_label = 0
        total_label = 0
        for node in range(len(self._nhi)):
            has_child = False
            for side in (0, 1):
                if self._child[node][side] != NONE:
                    has_child = True
                    max_label = max(max_label, self._label_len[node][side])
                    total_label += self._label_len[node][side]
            if has_child:
                internal += 1
        total = len(self._nhi)
        return PatriciaStats(
            total_nodes=total,
            internal_nodes=internal,
            leaf_nodes=total - internal,
            max_label_bits=max_label,
            total_label_bits=total_label,
            depth_nodes=self._depth,
        )

    def validate(self) -> None:
        """Structural checks: labels start with the edge side bit and
        every non-root node is referenced exactly once."""
        n = len(self._nhi)
        refs = [0] * n
        for node in range(n):
            for side in (0, 1):
                child = self._child[node][side]
                if child == NONE:
                    continue
                if not 0 < child < n:
                    raise TrieError(f"bad child index {child} at node {node}")
                length = self._label_len[node][side]
                if length < 1:
                    raise TrieError(f"empty edge label at node {node} side {side}")
                top_bit = (self._label[node][side] >> (length - 1)) & 1
                if top_bit != side:
                    raise TrieError(
                        f"label at node {node} side {side} does not start with {side}"
                    )
                refs[child] += 1
        for node in range(1, n):
            if refs[node] != 1:
                raise TrieError(f"node {node} referenced {refs[node]} times")
