"""IP-lookup substrate: prefixes, routing tables, tries and pipelines.

This package implements the lookup machinery the paper's power models
are built on (Section V-D): IPv4 prefixes, routing tables (RIBs), the
uni-bit binary trie with leaf pushing, the trie-level → pipeline-stage
mapping, and a cycle-level linear pipeline simulator.  Synthetic
BGP-like routing tables (:mod:`repro.iplookup.synth`) substitute for
the potaroo.net tables used in the paper (see DESIGN.md §2), and
:mod:`repro.iplookup.mrt` ingests real MRT/``TABLE_DUMP2`` RIB dumps
(see docs/TABLES.md).
"""

from repro.iplookup.prefix import Prefix, parse_prefix, format_address
from repro.iplookup.rib import Route, RoutingTable
from repro.iplookup.synth import SyntheticTableConfig, generate_table, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie, TrieStats
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.multibit import MultibitTrie
from repro.iplookup.mapping import NodeFormat, StageMemoryMap, map_trie_to_stages
from repro.iplookup.pipeline import LookupPipeline, PipelineTrace
from repro.iplookup.updates import (
    RouteUpdate,
    UpdateKind,
    UpdateStats,
    apply_updates,
    effective_write_rate,
    synthesize_churn,
)
from repro.iplookup.patricia import PatriciaTrie
from repro.iplookup.balancing import BalancedMapping, balance_factor, balanced_stage_map
from repro.iplookup.prefix6 import Prefix6, parse_prefix6, Synthetic6Config, generate_table6
from repro.iplookup.mrt import (
    NextHopInterner,
    RibDataset,
    RibEntry,
    dataset_from_entries,
    downsample,
    load_dataset,
    load_rib,
    parse_bgpdump_text,
    parse_mrt_bytes,
    virtual_tables_from_table,
)

__all__ = [
    "Prefix",
    "parse_prefix",
    "format_address",
    "Route",
    "RoutingTable",
    "SyntheticTableConfig",
    "generate_table",
    "generate_virtual_tables",
    "UnibitTrie",
    "TrieStats",
    "leaf_push",
    "MultibitTrie",
    "NodeFormat",
    "StageMemoryMap",
    "map_trie_to_stages",
    "LookupPipeline",
    "PipelineTrace",
    "RouteUpdate",
    "UpdateKind",
    "UpdateStats",
    "apply_updates",
    "effective_write_rate",
    "synthesize_churn",
    "PatriciaTrie",
    "BalancedMapping",
    "balance_factor",
    "balanced_stage_map",
    "Prefix6",
    "parse_prefix6",
    "Synthetic6Config",
    "generate_table6",
    "NextHopInterner",
    "RibDataset",
    "RibEntry",
    "dataset_from_entries",
    "downsample",
    "load_dataset",
    "load_rib",
    "parse_bgpdump_text",
    "parse_mrt_bytes",
    "virtual_tables_from_table",
]
