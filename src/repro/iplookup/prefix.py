"""IPv4 prefix type and parsing.

A prefix is an immutable ``(value, length)`` pair where ``value`` is
the 32-bit network address with all host bits zero and ``length`` is
the mask length in ``0..32``.  Prefixes order first by length then by
value, which gives a deterministic insertion order for trie builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.errors import PrefixError

__all__ = ["Prefix", "parse_prefix", "format_address", "DEFAULT_ROUTE"]

_MAX32 = 0xFFFFFFFF


@total_ordering
@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv4 prefix ``value/length`` with host bits forced to zero.

    Attributes
    ----------
    value:
        Network address as an unsigned 32-bit integer.  Bits below
        position ``32 - length`` must be zero.
    length:
        Mask length, ``0 <= length <= 32``.  Length 0 is the default
        route.
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise PrefixError(f"prefix length out of range: {self.length}")
        if not 0 <= self.value <= _MAX32:
            raise PrefixError(f"prefix value out of range: {self.value:#x}")
        if self.value & ~self.mask() & _MAX32:
            raise PrefixError(
                f"host bits set in {self.value:#010x}/{self.length}; "
                "use Prefix.normalized() to clear them"
            )

    @staticmethod
    def normalized(value: int, length: int) -> "Prefix":
        """Build a prefix, silently clearing any host bits in ``value``."""
        if not 0 <= length <= 32:
            raise PrefixError(f"prefix length out of range: {length}")
        mask = (_MAX32 << (32 - length)) & _MAX32 if length else 0
        return Prefix(value & mask, length)

    def mask(self) -> int:
        """The 32-bit network mask for this prefix."""
        return (_MAX32 << (32 - self.length)) & _MAX32 if self.length else 0

    def contains(self, address: int) -> bool:
        """True if ``address`` (32-bit int) falls inside this prefix."""
        return (address & self.mask()) == self.value

    def covers(self, other: "Prefix") -> bool:
        """True if this prefix is a (non-strict) ancestor of ``other``."""
        return self.length <= other.length and other.value & self.mask() == self.value

    def bit(self, level: int) -> int:
        """The bit consumed at trie ``level`` (0 = most significant)."""
        if not 0 <= level < 32:
            raise PrefixError(f"bit level out of range: {level}")
        return (self.value >> (31 - level)) & 1

    def bits(self) -> tuple[int, ...]:
        """The first ``length`` bits, most-significant first."""
        return tuple(self.bit(i) for i in range(self.length))

    def children(self) -> tuple["Prefix", "Prefix"]:
        """The two one-bit-longer prefixes covered by this prefix."""
        if self.length >= 32:
            raise PrefixError("cannot expand a /32 prefix")
        length = self.length + 1
        hi_bit = 1 << (32 - length)
        return (Prefix(self.value, length), Prefix(self.value | hi_bit, length))

    def first_address(self) -> int:
        """Lowest address covered by the prefix."""
        return self.value

    def last_address(self) -> int:
        """Highest address covered by the prefix."""
        return self.value | (~self.mask() & _MAX32)

    def num_addresses(self) -> int:
        """Number of addresses covered (2^(32-length))."""
        return 1 << (32 - self.length)

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.length, self.value) < (other.length, other.value)

    def __str__(self) -> str:
        return f"{format_address(self.value)}/{self.length}"


#: the zero-length default route ``0.0.0.0/0``
DEFAULT_ROUTE = Prefix(0, 0)


def format_address(value: int) -> str:
    """Render a 32-bit integer as dotted-quad notation."""
    if not 0 <= value <= _MAX32:
        raise PrefixError(f"address out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_address(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise PrefixError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in address: {text!r}")
        value = (value << 8) | octet
    return value


def parse_prefix(text: str) -> Prefix:
    """Parse ``"a.b.c.d/len"`` (or a bare address, meaning /32)."""
    text = text.strip()
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise PrefixError(f"malformed prefix length: {text!r}")
        length = int(len_text)
    else:
        addr_text, length = text, 32
    return Prefix.normalized(parse_address(addr_text), length)
