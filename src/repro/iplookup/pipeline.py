"""Cycle-level simulator of the linear lookup pipeline.

The paper's engines are linear pipelines: one trie level per stage,
one lookup admitted per clock, results emerging ``N`` cycles later
(Section V-D).  This simulator exists for two purposes:

1. **Functional validation** — every packet's pipeline result is the
   trie's LPM answer, cross-checked in tests against the linear-scan
   oracle.
2. **Activity measurement** — per-stage memory access counts and idle
   fractions, which feed the duty-cycle (clock-gating) term of the
   power models: a stage whose memory is not accessed in a cycle
   dissipates no dynamic power (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.iplookup.trie import UnibitTrie

__all__ = ["LookupPipeline", "PipelineTrace", "trace_from_walk"]


@dataclass(frozen=True)
class PipelineTrace:
    """Result of one pipeline simulation run.

    Attributes
    ----------
    results:
        NHI per packet, in arrival order.
    total_cycles:
        Cycles from first admission to last drain.
    accesses_per_stage:
        Memory reads issued by each stage over the run.
    busy_cycles_per_stage:
        Cycles each stage had a live packet occupying it.
    n_packets:
        Number of packets simulated.
    """

    results: np.ndarray
    total_cycles: int
    accesses_per_stage: np.ndarray
    busy_cycles_per_stage: np.ndarray
    n_packets: int

    @property
    def n_stages(self) -> int:
        return len(self.accesses_per_stage)

    @property
    def latency_cycles(self) -> int:
        """Per-packet latency: one cycle per stage plus the exit."""
        return self.n_stages + 1

    def stage_duty_cycle(self) -> np.ndarray:
        """Fraction of cycles each stage's memory was accessed."""
        if self.total_cycles == 0:
            return np.zeros(self.n_stages)
        return self.accesses_per_stage / self.total_cycles

    def mean_duty_cycle(self) -> float:
        """Average memory duty cycle across stages."""
        duty = self.stage_duty_cycle()
        return float(duty.mean()) if len(duty) else 0.0

    def throughput_packets_per_cycle(self) -> float:
        """Sustained admission rate over the run."""
        if self.total_cycles == 0:
            return 0.0
        return self.n_packets / self.total_cycles


def trace_from_walk(
    depths: np.ndarray,
    results: np.ndarray,
    n_stages: int,
    inter_arrival_gap: int = 0,
    admission_rate: float = 1.0,
    window_packets: int | None = None,
) -> PipelineTrace:
    """Closed-form pipeline accounting from a completed trie walk.

    Admission cycle of packet ``i`` is ``i*(gap+1)``; the packet
    occupies stage ``j`` during cycle ``admit+j`` and accesses stage
    ``j``'s memory iff its trie walk reaches level ``j+1`` (depth >
    ``j``).  With a strictly linear pipeline there are no structural
    hazards, so per-stage totals follow in closed form rather than
    per-cycle stepping — identical results, O(n + stages) instead of
    O(n × stages).  Shared by :meth:`LookupPipeline.run` and the
    batched serving layer (:mod:`repro.serve`), which derives the
    same activity trace from the merged engine's walk.

    ``admission_rate`` stretches the arrival spacing to model an
    offered load below line rate: a fraction ``r`` of cycles carries
    an admission, so the effective stride becomes ``(gap+1)/r`` and
    the measured duty cycle shrinks proportionally.
    ``window_packets`` sizes the arrival window by *offered* lookups
    rather than walked ones: lookups shed by admission control leave
    their arrival slots idle, so the duty cycle reflects the work the
    engine actually did over the window the load was offered in.
    """
    if n_stages < 1:
        raise ConfigurationError(f"n_stages must be >= 1, got {n_stages}")
    if inter_arrival_gap < 0:
        raise ConfigurationError("inter_arrival_gap must be non-negative")
    if not 0.0 < admission_rate <= 1.0:
        raise ConfigurationError(
            f"admission_rate must be in (0, 1], got {admission_rate}"
        )
    depths = np.asarray(depths, dtype=np.int64)
    results = np.asarray(results, dtype=np.int64)
    if depths.shape != results.shape:
        raise ConfigurationError("depths and results must have the same shape")
    n = len(depths)
    window = n if window_packets is None else int(window_packets)
    if window < n:
        raise ConfigurationError(
            f"window_packets ({window}) smaller than walked packets ({n})"
        )
    stride = (inter_arrival_gap + 1) / admission_rate
    total_cycles = int(round((window - 1) * stride)) + n_stages + 1 if window else 0
    # packets whose walk depth exceeds j access stage j; counting via
    # a depth histogram + cumulative sum is O(n + stages) where the
    # former (n × stages) boolean matrix was the serve hot path's
    # next bottleneck once the walks themselves were frozen
    hist = np.bincount(depths, minlength=n_stages)
    accesses = (n - np.cumsum(hist[:n_stages])).astype(np.int64)
    busy = np.full(n_stages, n, dtype=np.int64)
    return PipelineTrace(
        results=results,
        total_cycles=int(total_cycles),
        accesses_per_stage=accesses,
        busy_cycles_per_stage=busy,
        n_packets=n,
    )


class LookupPipeline:
    """Linear pipelined lookup engine over a uni-bit trie.

    Parameters
    ----------
    trie:
        The lookup trie (plain or leaf-pushed).  Stage ``j`` serves
        trie level ``j + 1``.
    n_stages:
        Pipeline depth; must cover the trie depth.
    """

    def __init__(self, trie: UnibitTrie, n_stages: int = 28):
        if n_stages < 1:
            raise ConfigurationError(f"n_stages must be >= 1, got {n_stages}")
        if trie.width != 32:
            raise ConfigurationError(
                "the pipeline simulator models the paper's IPv4 engines; "
                f"got a width-{trie.width} trie"
            )
        if trie.depth() > n_stages:
            raise ConfigurationError(
                f"trie depth {trie.depth()} exceeds pipeline depth {n_stages}"
            )
        self.trie = trie
        self.n_stages = n_stages

    def run(
        self,
        addresses: np.ndarray,
        inter_arrival_gap: int = 0,
    ) -> PipelineTrace:
        """Simulate a packet stream through the pipeline.

        Parameters
        ----------
        addresses:
            Destination addresses, one packet each, admitted in order.
        inter_arrival_gap:
            Idle cycles inserted between admissions (0 = back-to-back
            full line rate).  Models duty cycles below 100 %.
        """
        if inter_arrival_gap < 0:
            raise ConfigurationError("inter_arrival_gap must be non-negative")
        addresses = np.asarray(addresses, dtype=np.uint32)
        depths, results = self.trie.walk_batch(addresses)
        return trace_from_walk(depths, results, self.n_stages, inter_arrival_gap)

    def verify(self, addresses: np.ndarray) -> bool:
        """Check pipeline results against the trie's direct lookup."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        trace = self.run(addresses)
        direct = self.trie.lookup_batch(addresses)
        return bool(np.array_equal(trace.results, direct))
