"""MRT/``TABLE_DUMP2`` ingest: real RIB snapshots → :class:`RoutingTable`.

The paper's largest table is 3,725 synthetic prefixes; a production
FIB is ~1M routes.  This module closes that gap with a dependency-free
ingest path for the two formats RIPE RIS snapshots come in:

* bgpdump's machine-readable text (``bgpdump -m latest-bview.gz``),
  pipe-delimited ``TABLE_DUMP2|timestamp|B|peer_ip|peer_as|prefix|...``
  lines, and
* the raw binary MRT ``TABLE_DUMP_V2`` RIB format (RFC 6396 §4.3):
  a ``PEER_INDEX_TABLE`` record followed by ``RIB_IPV4_UNICAST`` /
  ``RIB_IPV6_UNICAST`` records, optionally gzip-compressed.

Parsed entries are reduced to the library's vocabulary by
:func:`dataset_from_entries`: next-hop addresses are *interned* into
the small non-negative NHI index space trie leaves store, IPv4 and
IPv6 prefixes are split into separate :class:`RoutingTable`\\ s, and
duplicate announcements (the same prefix seen from multiple peers)
dedup last-write-wins in record order — the same FIB semantics
:meth:`RoutingTable.add` implements.  :func:`downsample` cuts a table
to a target size deterministically under a fixed seed, and
:func:`virtual_tables_from_table` splits one real table into K
structurally-overlapping virtual tables for the merging experiments.

Both directions are implemented — :func:`render_bgpdump_line` and
:func:`render_mrt_bytes` re-emit parsed entries — so property tests
can round-trip ``Route → rendered dump → parse`` without shipping a
multi-hundred-MB fixture.
"""

from __future__ import annotations

import gzip
import hashlib
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import MrtError, PrefixError
from repro.iplookup.prefix import Prefix, format_address, parse_address
from repro.iplookup.prefix6 import Prefix6, parse_prefix6
from repro.iplookup.rib import RoutingTable

__all__ = [
    "MRT_TYPE_TABLE_DUMP2",
    "SUBTYPE_PEER_INDEX_TABLE",
    "SUBTYPE_RIB_IPV4_UNICAST",
    "SUBTYPE_RIB_IPV6_UNICAST",
    "RibEntry",
    "RibDataset",
    "NextHopInterner",
    "parse_as_path",
    "parse_bgpdump_text",
    "parse_mrt_bytes",
    "load_rib",
    "render_bgpdump_line",
    "render_mrt_bytes",
    "dataset_from_entries",
    "load_dataset",
    "downsample",
    "virtual_tables_from_table",
    "file_sha256",
]

#: MRT record type for ``TABLE_DUMP_V2`` (RFC 6396 §4.3)
MRT_TYPE_TABLE_DUMP2 = 13
#: ``TABLE_DUMP_V2`` subtypes this parser understands
SUBTYPE_PEER_INDEX_TABLE = 1
SUBTYPE_RIB_IPV4_UNICAST = 2
SUBTYPE_RIB_IPV6_UNICAST = 4

# BGP path-attribute type codes carried inside RIB entries
_ATTR_AS_PATH = 2
_ATTR_NEXT_HOP = 3
_ATTR_MP_REACH_NLRI = 14
# AS_PATH segment types
_SEG_AS_SET = 1
_SEG_AS_SEQUENCE = 2

#: number of ``|``-separated fields bgpdump -m emits for TABLE_DUMP2
_TEXT_FIELDS = 15


@dataclass(frozen=True, slots=True)
class RibEntry:
    """One RIB entry as it appears in a dump: prefix seen from a peer.

    ``as_path`` keeps bgpdump's textual form (space-separated ASNs,
    AS-sets in ``{}``); :func:`parse_as_path` reduces it to the
    deduplicated ASN sequence when needed.
    """

    timestamp: int
    peer_ip: str
    peer_as: int
    prefix: str
    as_path: str
    next_hop: str
    origin: str = "IGP"

    @property
    def is_ipv6(self) -> bool:
        """True for IPv6 NLRI (``:`` in the prefix text)."""
        return ":" in self.prefix


def parse_as_path(path: str) -> tuple[int, ...]:
    """Reduce a textual AS path to its deduplicated ASN sequence.

    AS-sets (``{64512,64513}``) contribute their first member;
    consecutive duplicates (prepending) collapse to one hop — the
    reduction the related AS-relationship tooling applies before
    counting neighbors.
    """
    asns: list[int] = []
    for segment in path.split():
        token = segment.strip("{}").split(",")[0]
        if token.isdigit():
            asns.append(int(token))
    deduped: list[int] = []
    for asn in asns:
        if not deduped or asn != deduped[-1]:
            deduped.append(asn)
    return tuple(deduped)


# -- text format (bgpdump -m) -------------------------------------------


def parse_bgpdump_text(
    text: str | Iterable[str], *, strict: bool = True
) -> Iterator[RibEntry]:
    """Parse ``bgpdump -m`` machine-readable lines into entries.

    Lines whose first field is not ``TABLE_DUMP2`` (or whose record
    type is not ``B``, a RIB entry) are skipped — real dump exports
    interleave state-change records.  Malformed ``TABLE_DUMP2`` lines
    raise :class:`~repro.errors.MrtError` with the line number;
    ``strict=False`` skips them instead, which is how multi-collector
    concatenations with the odd truncated line are ingested.
    """
    lines = text.splitlines() if isinstance(text, str) else text
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if parts[0] != "TABLE_DUMP2":
            continue
        if len(parts) >= 3 and parts[2] != "B":
            # state-change / withdrawal records, whatever their width
            continue
        try:
            if len(parts) < 9:
                raise MrtError(
                    f"line {lineno}: expected >= 9 '|' fields, got {len(parts)}"
                )
            yield RibEntry(
                timestamp=int(parts[1]),
                peer_ip=parts[3],
                peer_as=int(parts[4]),
                prefix=parts[5],
                as_path=parts[6],
                origin=parts[7],
                next_hop=parts[8],
            )
        except MrtError:
            if strict:
                raise
        except ValueError as exc:
            if strict:
                raise MrtError(f"line {lineno}: {exc}") from exc


def render_bgpdump_line(entry: RibEntry) -> str:
    """Render one entry back to its ``bgpdump -m`` text line.

    The trailing fields bgpdump emits (local-pref, MED, community,
    atomic-aggregate, aggregator) carry no routing-table information
    and render empty, exactly as bgpdump prints them for most routes.
    """
    lead = (
        "TABLE_DUMP2",
        str(entry.timestamp),
        "B",
        entry.peer_ip,
        str(entry.peer_as),
        entry.prefix,
        entry.as_path,
        entry.origin,
        entry.next_hop,
    )
    return "|".join(lead) + "|" * (_TEXT_FIELDS - len(lead))


# -- binary format (RFC 6396 TABLE_DUMP_V2) ------------------------------


class _Cursor:
    """Bounds-checked big-endian reader over one record's body."""

    __slots__ = ("data", "pos", "context")

    def __init__(self, data: bytes, context: str, pos: int = 0):
        self.data = data
        self.pos = pos
        self.context = context

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise MrtError(
                f"{self.context}: truncated at byte {self.pos} "
                f"(need {n}, have {len(self.data) - self.pos})"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos


def _format_ipv6(raw: bytes) -> str:
    """Compressed textual form of a 16-byte IPv6 address."""
    value = int.from_bytes(raw, "big")
    return str(Prefix6(value, 128)).rsplit("/", 1)[0]


def _decode_prefix(cursor: _Cursor, ipv6: bool) -> str:
    """Read one length-prefixed NLRI and return its canonical text."""
    bits = cursor.u8()
    width = 128 if ipv6 else 32
    if bits > width:
        raise MrtError(f"{cursor.context}: prefix length {bits} > {width}")
    raw = cursor.take((bits + 7) // 8)
    value = int.from_bytes(raw.ljust(width // 8, b"\x00"), "big")
    if ipv6:
        return str(Prefix6.normalized(value, bits))
    return f"{format_address(Prefix.normalized(value, bits).value)}/{bits}"


def _parse_peer_index(cursor: _Cursor) -> list[tuple[str, int]]:
    """Parse a PEER_INDEX_TABLE body into ``(peer_ip, peer_as)`` rows."""
    cursor.u32()  # collector BGP id
    cursor.take(cursor.u16())  # view name
    peers: list[tuple[str, int]] = []
    for _ in range(cursor.u16()):
        peer_type = cursor.u8()
        cursor.u32()  # peer BGP id
        if peer_type & 0x01:
            ip = _format_ipv6(cursor.take(16))
        else:
            ip = format_address(cursor.u32())
        asn = cursor.u32() if peer_type & 0x02 else cursor.u16()
        peers.append((ip, asn))
    return peers


def _parse_attributes(cursor: _Cursor, ipv6: bool) -> tuple[str, str]:
    """Extract (as_path, next_hop) from one entry's BGP attributes."""
    as_path = ""
    next_hop = ""
    while cursor.remaining:
        flags = cursor.u8()
        attr_type = cursor.u8()
        length = cursor.u16() if flags & 0x10 else cursor.u8()
        body = _Cursor(cursor.take(length), cursor.context)
        if attr_type == _ATTR_AS_PATH:
            segments: list[str] = []
            while body.remaining:
                seg_type = body.u8()
                count = body.u8()
                asns = [str(body.u32()) for _ in range(count)]
                if seg_type == _SEG_AS_SET:
                    segments.append("{" + ",".join(asns) + "}")
                else:
                    segments.extend(asns)
            as_path = " ".join(segments)
        elif attr_type == _ATTR_NEXT_HOP and not ipv6:
            next_hop = format_address(body.u32())
        elif attr_type == _ATTR_MP_REACH_NLRI and ipv6:
            # RFC 6396 §4.3.4: the RIB encoding of MP_REACH_NLRI keeps
            # only the next-hop length and address
            nh_len = body.u8()
            raw = body.take(nh_len)
            next_hop = _format_ipv6(raw[:16])
    return as_path, next_hop


def parse_mrt_bytes(data: bytes, *, strict: bool = True) -> Iterator[RibEntry]:
    """Parse a binary MRT ``TABLE_DUMP_V2`` RIB dump into entries.

    Accepts raw or gzip-compressed bytes (``latest-bview.gz`` as
    downloaded).  Non-``TABLE_DUMP_V2`` records and subtypes other
    than the unicast RIBs are skipped; a RIB record that arrives
    before any ``PEER_INDEX_TABLE`` raises (``strict=False`` skips).
    """
    if data[:2] == b"\x1f\x8b":
        data = gzip.decompress(data)
    peers: list[tuple[str, int]] | None = None
    offset = 0
    while offset < len(data):
        if offset + 12 > len(data):
            raise MrtError(f"truncated MRT header at byte {offset}")
        timestamp, rec_type, subtype, length = struct.unpack(
            ">IHHI", data[offset : offset + 12]
        )
        body_start = offset + 12
        if body_start + length > len(data):
            raise MrtError(f"record at byte {offset} overruns the dump")
        offset = body_start + length
        if rec_type != MRT_TYPE_TABLE_DUMP2:
            continue
        context = f"record@{body_start - 12}"
        cursor = _Cursor(data[body_start : body_start + length], context)
        if subtype == SUBTYPE_PEER_INDEX_TABLE:
            peers = _parse_peer_index(cursor)
            continue
        if subtype not in (SUBTYPE_RIB_IPV4_UNICAST, SUBTYPE_RIB_IPV6_UNICAST):
            continue
        ipv6 = subtype == SUBTYPE_RIB_IPV6_UNICAST
        try:
            if peers is None:
                raise MrtError(f"{context}: RIB record before PEER_INDEX_TABLE")
            cursor.u32()  # sequence number
            prefix = _decode_prefix(cursor, ipv6)
            for _ in range(cursor.u16()):
                peer_index = cursor.u16()
                originated = cursor.u32()
                attrs = _Cursor(cursor.take(cursor.u16()), context)
                if peer_index >= len(peers):
                    raise MrtError(
                        f"{context}: peer index {peer_index} out of range"
                    )
                peer_ip, peer_as = peers[peer_index]
                as_path, next_hop = _parse_attributes(attrs, ipv6)
                yield RibEntry(
                    timestamp=originated or timestamp,
                    peer_ip=peer_ip,
                    peer_as=peer_as,
                    prefix=prefix,
                    as_path=as_path,
                    next_hop=next_hop or peer_ip,
                )
        except MrtError:
            if strict:
                raise


def render_mrt_bytes(entries: Sequence[RibEntry], *, compress: bool = False) -> bytes:
    """Render entries as a binary ``TABLE_DUMP_V2`` dump.

    Emits one ``PEER_INDEX_TABLE`` over the distinct peers, then one
    RIB record per prefix carrying every peer's entry — the inverse of
    :func:`parse_mrt_bytes`, used by the round-trip property tests and
    the committed binary fixture.
    """
    peers: list[tuple[str, int]] = []
    peer_index: dict[tuple[str, int], int] = {}
    by_prefix: dict[str, list[RibEntry]] = {}
    for entry in entries:
        key = (entry.peer_ip, entry.peer_as)
        if key not in peer_index:
            peer_index[key] = len(peers)
            peers.append(key)
        by_prefix.setdefault(entry.prefix, []).append(entry)

    out = bytearray()

    def record(timestamp: int, subtype: int, body: bytes) -> None:
        out.extend(
            struct.pack(">IHHI", timestamp, MRT_TYPE_TABLE_DUMP2, subtype, len(body))
        )
        out.extend(body)

    index = bytearray()
    index.extend(struct.pack(">I", 0))  # collector BGP id
    index.extend(struct.pack(">H", 0))  # empty view name
    index.extend(struct.pack(">H", len(peers)))
    for ip, asn in peers:
        ipv6 = ":" in ip
        index.append((0x01 if ipv6 else 0x00) | 0x02)  # always AS4
        index.extend(struct.pack(">I", 0))  # peer BGP id
        if ipv6:
            index.extend(parse_prefix6(ip).value.to_bytes(16, "big"))
        else:
            index.extend(struct.pack(">I", parse_address(ip)))
        index.extend(struct.pack(">I", asn))
    first_ts = entries[0].timestamp if entries else 0
    record(first_ts, SUBTYPE_PEER_INDEX_TABLE, bytes(index))

    for sequence, (prefix_text, group) in enumerate(by_prefix.items()):
        ipv6 = ":" in prefix_text
        if ipv6:
            parsed6 = parse_prefix6(prefix_text)
            value, bits, width = parsed6.value, parsed6.length, 128
        else:
            parsed4 = _parse_prefix_text(prefix_text)
            value, bits, width = parsed4.value, parsed4.length, 32
        body = bytearray()
        body.extend(struct.pack(">I", sequence))
        body.append(bits)
        body.extend(value.to_bytes(width // 8, "big")[: (bits + 7) // 8])
        body.extend(struct.pack(">H", len(group)))
        for entry in group:
            attrs = bytearray()
            path = bytearray()
            for token in entry.as_path.split():
                if token.startswith("{"):
                    members = [int(t) for t in token.strip("{}").split(",") if t]
                    path.append(_SEG_AS_SET)
                    path.append(len(members))
                    for member in members:
                        path.extend(struct.pack(">I", member))
                else:
                    path.extend((_SEG_AS_SEQUENCE, 1))
                    path.extend(struct.pack(">I", int(token)))
            attrs.extend((0x40, _ATTR_AS_PATH, len(path)))
            attrs.extend(path)
            if ipv6:
                nh = parse_prefix6(entry.next_hop).value.to_bytes(16, "big")
                attrs.extend((0x80, _ATTR_MP_REACH_NLRI, 1 + len(nh), len(nh)))
                attrs.extend(nh)
            else:
                attrs.extend((0x40, _ATTR_NEXT_HOP, 4))
                attrs.extend(struct.pack(">I", parse_address(entry.next_hop)))
            body.extend(struct.pack(">H", peer_index[(entry.peer_ip, entry.peer_as)]))
            body.extend(struct.pack(">I", entry.timestamp))
            body.extend(struct.pack(">H", len(attrs)))
            body.extend(attrs)
        record(
            group[0].timestamp,
            SUBTYPE_RIB_IPV6_UNICAST if ipv6 else SUBTYPE_RIB_IPV4_UNICAST,
            bytes(body),
        )
    raw = bytes(out)
    return gzip.compress(raw, mtime=0) if compress else raw


def load_rib(path: str, *, strict: bool = True) -> list[RibEntry]:
    """Load a RIB dump file, auto-detecting text vs binary and gzip.

    A file whose (decompressed) head looks like ``bgpdump -m`` output
    goes through the text parser; anything else through the binary MRT
    parser.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:2] == b"\x1f\x8b":
        data = gzip.decompress(data)
    head = data[:4096]
    if head.lstrip()[:11] in (b"TABLE_DUMP2", b"TABLE_DUMP|") or head.lstrip().startswith(
        b"#"
    ):
        return list(parse_bgpdump_text(data.decode("utf-8", "replace"), strict=strict))
    return list(parse_mrt_bytes(data, strict=strict))


# -- reduction into the library's vocabulary -----------------------------


class NextHopInterner:
    """Stable next-hop-address → NHI-index interning.

    Trie leaves store small non-negative next-hop indices (the paper's
    NHI encoding); real dumps carry next-hop *addresses*.  Interning
    in first-seen order keeps the mapping deterministic for a given
    dump, so the same fixture always produces the same tables.
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    def intern(self, address: str) -> int:
        """Index for ``address``, allocating the next one if new."""
        if address not in self._index:
            self._index[address] = len(self._index)
        return self._index[address]

    @property
    def table(self) -> tuple[str, ...]:
        """Interned addresses in index order (the next-hop table)."""
        return tuple(self._index)

    def __len__(self) -> int:
        return len(self._index)


@dataclass
class RibDataset:
    """A parsed dump reduced to the library's table vocabulary.

    ``v4``/``v6`` hold the deduplicated per-family tables; ``next_hops``
    is the interned next-hop table shared by both (route next-hop
    indices point into it); ``n_entries``/``n_duplicates`` record how
    much multi-peer redundancy the dedup collapsed.
    """

    name: str
    v4: RoutingTable
    v6: RoutingTable
    next_hops: tuple[str, ...] = ()
    n_entries: int = 0
    n_duplicates: int = 0
    source: str = ""


def _parse_prefix_text(text: str) -> Prefix:
    """Parse IPv4 ``a.b.c.d/len`` text, normalizing stray host bits.

    Binary NLRI can only carry ``len`` bits, but hand-edited or buggy
    text dumps occasionally set bits beyond the mask; masking them off
    matches what every BGP speaker does on receipt.
    """
    if "/" in text:
        address, _, length_text = text.partition("/")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise PrefixError(f"bad prefix length in {text!r}") from exc
        if not 0 <= length <= 32:
            raise PrefixError(f"prefix length {length} out of range in {text!r}")
        return Prefix.normalized(parse_address(address), length)
    return Prefix(parse_address(text), 32)


def dataset_from_entries(
    entries: Iterable[RibEntry],
    *,
    name: str = "rib",
    source: str = "",
    interner: NextHopInterner | None = None,
) -> RibDataset:
    """Reduce parsed entries to per-family routing tables.

    Entries are consumed in dump order; a prefix announced by several
    peers keeps the *last* peer's next hop (last-write-wins, the
    :meth:`RoutingTable.add` FIB semantic), which is deterministic
    because both parsers yield entries in record order.
    """
    interner = interner if interner is not None else NextHopInterner()
    v4 = RoutingTable(name=f"{name}-v4")
    v6 = RoutingTable(name=f"{name}-v6")
    n_entries = 0
    n_duplicates = 0
    for entry in entries:
        n_entries += 1
        nhi = interner.intern(entry.next_hop)
        if entry.is_ipv6:
            prefix6 = parse_prefix6(entry.prefix)
            if prefix6 in v6:
                n_duplicates += 1
            v6.add(prefix6, nhi)
        else:
            prefix4 = _parse_prefix_text(entry.prefix)
            if prefix4 in v4:
                n_duplicates += 1
            v4.add(prefix4, nhi)
    return RibDataset(
        name=name,
        v4=v4,
        v6=v6,
        next_hops=interner.table,
        n_entries=n_entries,
        n_duplicates=n_duplicates,
        source=source,
    )


def load_dataset(path: str, *, name: str | None = None, strict: bool = True) -> RibDataset:
    """Load + reduce a dump file in one call."""
    return dataset_from_entries(
        load_rib(path, strict=strict), name=name or path, source=path
    )


# -- downsampling and virtual-table construction -------------------------


def downsample(table: RoutingTable, target: int, *, seed: int = 0) -> RoutingTable:
    """Deterministic sample of ``target`` routes from ``table``.

    Sampling is without replacement over the canonical prefix order
    with a seeded generator, so a (table, target, seed) triple always
    yields the same slice.  The default route, when present, is always
    kept — an edge table without its default is not an edge table.
    A ``target`` at or above the table size returns a copy.
    """
    if target < 0:
        raise PrefixError(f"downsample target must be >= 0, got {target}")
    routes = table.routes()
    if target >= len(routes):
        return RoutingTable.from_routes(routes, name=table.name)
    if target == 0:
        return RoutingTable(name=f"{table.name}@0")
    defaults = [r for r in routes if r.prefix.length == 0][:target]
    rest = [r for r in routes if r.prefix.length > 0]
    rng = np.random.default_rng(seed)
    picked = rng.choice(len(rest), size=target - len(defaults), replace=False)
    chosen = defaults + [rest[i] for i in sorted(picked)]
    return RoutingTable.from_routes(chosen, name=f"{table.name}@{target}")


def virtual_tables_from_table(
    table: RoutingTable,
    k: int,
    *,
    shared_fraction: float = 0.5,
    seed: int = 0,
) -> list[RoutingTable]:
    """Split one real table into K structurally-overlapping VN tables.

    Mirrors :func:`repro.iplookup.synth.generate_virtual_tables`: a
    shared pool of ``shared_fraction`` of the routes appears in every
    virtual table (the structural overlap merging exploits), and the
    remaining routes are dealt round-robin as each VN's private slice.
    Next hops are preserved, so every virtual table stays
    oracle-checkable against the source dump.
    """
    if k < 1:
        raise PrefixError(f"need k >= 1 virtual tables, got {k}")
    if not 0.0 <= shared_fraction <= 1.0:
        raise PrefixError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
    routes = table.routes()
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(routes))
    n_shared = round(shared_fraction * len(routes))
    shared = [routes[i] for i in sorted(order[:n_shared])]
    private = [routes[i] for i in order[n_shared:]]
    tables = []
    for vn in range(k):
        own = shared + [r for i, r in enumerate(private) if i % k == vn]
        tables.append(RoutingTable.from_routes(own, name=f"{table.name}-vn{vn}"))
    return tables


def file_sha256(path: str) -> str:
    """Content hash of a fixture file, for cache-keying experiments.

    File-backed experiment inputs are invisible to the engine's
    parameter hashing; passing this digest as a spec parameter makes
    the content-addressed cache invalidate when the fixture changes.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
