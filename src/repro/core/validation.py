"""Model validation: percentage error vs experiment (paper Fig. 7).

The paper validates its analytical models against post place-and-route
measurements and reports a maximum error of ±3 %, with NV/VS errors
"much less" than the merged scheme's.  These helpers compute the
paper's error metric and summarize it over sweeps so the Fig. 7 bench
and the regression tests can assert the bound.
"""

from __future__ import annotations

from collections.abc import Sequence

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["percentage_error", "ErrorSummary", "summarize_errors", "PAPER_MAX_ERROR_PCT"]

#: the paper's reported maximum model error (Section VI-A)
PAPER_MAX_ERROR_PCT = 3.0


def percentage_error(model_w: float, experimental_w: float) -> float:
    """The paper's definition: (P_model − P_exp) / P_exp × 100 %."""
    if experimental_w <= 0:
        raise ConfigurationError("experimental power must be positive")
    return (model_w - experimental_w) / experimental_w * 100.0


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate error statistics over one series of scenarios."""

    label: str
    errors_pct: np.ndarray

    @property
    def max_abs_pct(self) -> float:
        """Worst-case |error| over the series."""
        return float(np.abs(self.errors_pct).max()) if len(self.errors_pct) else 0.0

    @property
    def mean_pct(self) -> float:
        """Mean signed error (bias) over the series."""
        return float(self.errors_pct.mean()) if len(self.errors_pct) else 0.0

    @property
    def rms_pct(self) -> float:
        """Root-mean-square error over the series."""
        if not len(self.errors_pct):
            return 0.0
        return float(np.sqrt((self.errors_pct**2).mean()))

    def within_paper_bound(self, bound_pct: float = PAPER_MAX_ERROR_PCT) -> bool:
        """True if every point satisfies the paper's ±bound claim."""
        return self.max_abs_pct <= bound_pct


def summarize_errors(
    label: str,
    model_w: Sequence[float] | np.ndarray,
    experimental_w: Sequence[float] | np.ndarray,
) -> ErrorSummary:
    """Build an :class:`ErrorSummary` from paired power series."""
    model = np.asarray(model_w, dtype=float)
    exp = np.asarray(experimental_w, dtype=float)
    if model.shape != exp.shape:
        raise ConfigurationError("model and experimental series must align")
    if (exp <= 0).any():
        raise ConfigurationError("experimental power must be positive")
    return ErrorSummary(label=label, errors_pct=(model - exp) / exp * 100.0)
