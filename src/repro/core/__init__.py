"""Core contribution: the paper's analytical power models (Eqs. 1–6).

* :mod:`repro.core.resources` — resource models R_NV, R_VS, R_VM.
* :mod:`repro.core.power` — power models P_NV, P_VS, P_VM.
* :mod:`repro.core.metrics` — throughput and mW/Gbps (Section VI-B).
* :mod:`repro.core.estimator` — scenario evaluation tying the models
  to the FPGA and lookup substrates, producing both the analytical
  estimate and the simulated post-P&R "experimental" measurement.
* :mod:`repro.core.validation` — model-vs-experimental error (Fig. 7).
"""

from repro.core.config import ScenarioConfig
from repro.core.resources import SchemeResources, engine_stage_map, merged_stage_map, scheme_resources
from repro.core.power import AnalyticalPowerModel, PowerBreakdown
from repro.core.metrics import throughput_gbps, mw_per_gbps, energy_per_packet_nj
from repro.core.estimator import ScenarioEstimator, ScenarioResult, ExperimentalPower
from repro.core.validation import percentage_error, ErrorSummary, summarize_errors
from repro.core.uncertainty import Tolerances, PowerBounds, power_bounds

__all__ = [
    "ScenarioConfig",
    "SchemeResources",
    "engine_stage_map",
    "merged_stage_map",
    "scheme_resources",
    "AnalyticalPowerModel",
    "PowerBreakdown",
    "throughput_gbps",
    "mw_per_gbps",
    "energy_per_packet_nj",
    "ScenarioEstimator",
    "ScenarioResult",
    "ExperimentalPower",
    "percentage_error",
    "ErrorSummary",
    "summarize_errors",
    "Tolerances",
    "PowerBounds",
    "power_bounds",
]
