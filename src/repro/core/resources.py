"""Resource models: R_NV, R_VS, R_VM (paper Eqs. 1, 3, 5).

The resource model turns trie statistics into device-level resource
consumption for each scheme:

* **Eq. 1** — R_NV = Σᵢ (D + Σⱼ (L_{i,j} + M_{i,j})): K devices, each
  carrying one engine.
* **Eq. 3** — R_VS = D + Σᵢ Σⱼ (L_{i,j} + M_{i,j}): one device, K
  engines.
* **Eq. 5** — R_VM = D + Σⱼ (L_{0,j} + M̃ⱼ): one device, one engine
  over the merged memory M̃.  Following DESIGN.md §2, merged node
  counts scale by ``1 + (K−1)(1−α)`` (α = pairwise merging
  efficiency) and each merged leaf stores a K-wide NHI vector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fpga.bram import pack_stage_memory
from repro.fpga.device import DeviceSpec, ResourceUsage
from repro.fpga.logic import PAPER_PE_FOOTPRINT, PeFootprint
from repro.fpga.placer import ENGINE_IO_PINS, SHARED_IO_PINS
from repro.iplookup.mapping import (
    DEFAULT_NODE_FORMAT,
    NodeFormat,
    StageMemoryMap,
    map_trie_to_stages,
)
from repro.iplookup.trie import TrieStats
from repro.virt.schemes import Scheme

__all__ = [
    "merged_multiplier",
    "engine_stage_map",
    "merged_stage_map",
    "merged_stage_map_hetero",
    "SchemeResources",
    "scheme_resources",
    "scheme_resources_hetero",
]

import numpy as np


def merged_multiplier(k: int, alpha: float) -> float:
    """Merged-trie node multiplier: ``1 + (K−1)(1−α)``.

    α = 1 (identical tables) collapses K tries into one; α = 0 (no
    overlap) stores all K in full.  See DESIGN.md §2 for why this is
    the consistent reading of the paper's Eq. 5.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    return 1.0 + (k - 1) * (1.0 - alpha)


def engine_stage_map(
    stats: TrieStats,
    n_stages: int,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
) -> StageMemoryMap:
    """Per-stage memory of one non-merged engine (the M_{i,j})."""
    return map_trie_to_stages(stats, n_stages, node_format, nhi_vector_width=1)


def merged_stage_map(
    stats: TrieStats,
    k: int,
    alpha: float,
    n_stages: int,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
) -> StageMemoryMap:
    """Analytical per-stage memory of the merged engine (the M̃ⱼ).

    Scales the base trie's per-level internal and leaf counts by the
    merged multiplier and widens each leaf to a K-entry NHI vector.
    For K = 1 this reduces exactly to :func:`engine_stage_map`.
    """
    mult = merged_multiplier(k, alpha if k > 1 else 1.0)
    if stats.depth > n_stages:
        raise ConfigurationError(
            f"trie depth {stats.depth} exceeds pipeline depth {n_stages}"
        )
    pointer_bits = np.zeros(n_stages, dtype=np.int64)
    nhi_bits = np.zeros(n_stages, dtype=np.int64)
    nodes = np.zeros(n_stages, dtype=np.int64)
    internal_bits = node_format.internal_node_bits()
    leaf_bits = node_format.leaf_node_bits(nhi_vector_width=k)
    for level in range(1, stats.depth + 1):
        stage = level - 1
        n_internal = int(round(stats.internal_per_level[level] * mult))
        n_leaves = int(round(stats.leaves_per_level[level] * mult))
        pointer_bits[stage] = n_internal * internal_bits
        nhi_bits[stage] = n_leaves * leaf_bits
        nodes[stage] = n_internal + n_leaves
    return StageMemoryMap(
        n_stages=n_stages,
        pointer_bits_per_stage=pointer_bits,
        nhi_bits_per_stage=nhi_bits,
        nodes_per_stage=nodes,
        node_format=node_format,
        nhi_vector_width=k,
    )


def merged_stage_map_hetero(
    stats_list: list[TrieStats],
    alpha: float,
    n_stages: int,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
) -> StageMemoryMap:
    """Analytical merged memory for *heterogeneous* tables.

    Relaxes Assumption 2: per level, the union holds the largest
    table's nodes in full plus a fraction ``(1 − α)`` of every other
    table's — which reduces to :func:`merged_stage_map` when all
    tables are identical (α = 1 → the largest table alone; α = 0 →
    the plain sum).  Leaves still widen to a K-entry NHI vector.
    """
    if not stats_list:
        raise ConfigurationError("need at least one table's statistics")
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    k = len(stats_list)
    depth = max(stats.depth for stats in stats_list)
    if depth > n_stages:
        raise ConfigurationError(f"trie depth {depth} exceeds pipeline depth {n_stages}")
    pointer_bits = np.zeros(n_stages, dtype=np.int64)
    nhi_bits = np.zeros(n_stages, dtype=np.int64)
    nodes = np.zeros(n_stages, dtype=np.int64)
    internal_bits = node_format.internal_node_bits()
    leaf_bits = node_format.leaf_node_bits(nhi_vector_width=k)

    def level_counts(stats: TrieStats, level: int, kind: str) -> int:
        per_level = (
            stats.internal_per_level if kind == "internal" else stats.leaves_per_level
        )
        return per_level[level] if level <= stats.depth else 0

    for level in range(1, depth + 1):
        merged = {}
        for kind in ("internal", "leaf"):
            counts = sorted(
                (level_counts(stats, level, kind) for stats in stats_list),
                reverse=True,
            )
            merged[kind] = int(round(counts[0] + (1.0 - alpha) * sum(counts[1:])))
        stage = level - 1
        pointer_bits[stage] = merged["internal"] * internal_bits
        nhi_bits[stage] = merged["leaf"] * leaf_bits
        nodes[stage] = merged["internal"] + merged["leaf"]
    return StageMemoryMap(
        n_stages=n_stages,
        pointer_bits_per_stage=pointer_bits,
        nhi_bits_per_stage=nhi_bits,
        nodes_per_stage=nodes,
        node_format=node_format,
        nhi_vector_width=k,
    )


@dataclass(frozen=True)
class SchemeResources:
    """Resource consumption of one scenario (Eqs. 1/3/5 evaluated).

    Attributes
    ----------
    scheme, k:
        The configuration.
    devices:
        Physical device count (K for NV, 1 otherwise).
    per_device_usage:
        Resources on each device (identical across NV devices).
    engine_maps:
        Stage memory map per engine (one entry for VM).
    """

    scheme: Scheme
    k: int
    devices: int
    per_device_usage: ResourceUsage
    engine_maps: tuple[StageMemoryMap, ...]

    @property
    def total_usage(self) -> ResourceUsage:
        """Aggregate usage across all devices."""
        return self.per_device_usage.scaled(self.devices)

    @property
    def total_memory_bits(self) -> int:
        """Lookup memory across all engines (Fig. 4 quantities)."""
        return sum(m.total_bits for m in self.engine_maps)

    def fits(self, device: DeviceSpec) -> bool:
        """True if each device's share fits the part."""
        return device.fits(self.per_device_usage)


def _engine_usage(
    stage_map: StageMemoryMap,
    footprint: PeFootprint,
    word_width: int,
) -> ResourceUsage:
    """Logic + packed BRAM usage of one engine."""
    usage = footprint.usage(stage_map.n_stages, io_pins=ENGINE_IO_PINS)
    blocks36 = 0
    blocks18 = 0
    for bits in stage_map.bits_per_stage:
        packing = pack_stage_memory(int(bits), word_width)
        blocks36 += packing.blocks36
        blocks18 += packing.blocks18
    return usage + ResourceUsage(bram36=blocks36, bram18=blocks18)


def scheme_resources_hetero(
    scheme: Scheme,
    stats_list: list[TrieStats],
    *,
    alpha: float | None = None,
    n_stages: int = 28,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
    footprint: PeFootprint = PAPER_PE_FOOTPRINT,
) -> SchemeResources:
    """Eq. 1 / 3 / 5 with *per-VN* table statistics (Assumption 2 relaxed).

    NV/VS get one engine per table sized from that table's own trie;
    VM uses :func:`merged_stage_map_hetero`.
    """
    if not stats_list:
        raise ConfigurationError("need at least one table's statistics")
    k = len(stats_list)
    word_width = node_format.pointer_bits
    if scheme is Scheme.VM:
        if k > 1 and alpha is None:
            raise ConfigurationError("merged scheme requires alpha")
        merged = merged_stage_map_hetero(
            stats_list, alpha if alpha is not None else 1.0, n_stages, node_format
        )
        usage = _engine_usage(merged, footprint, word_width) + ResourceUsage(
            io_pins=SHARED_IO_PINS
        )
        return SchemeResources(
            scheme=scheme, k=k, devices=1, per_device_usage=usage, engine_maps=(merged,)
        )
    maps = tuple(
        engine_stage_map(stats, n_stages, node_format) for stats in stats_list
    )
    engines = [_engine_usage(m, footprint, word_width) for m in maps]
    if scheme is Scheme.NV:
        # devices differ in memory; report the largest as the per-device
        # envelope (each network still needs its own chip)
        biggest = max(engines, key=lambda usage: usage.bram18_equivalent)
        per_device = biggest + ResourceUsage(io_pins=SHARED_IO_PINS)
        return SchemeResources(
            scheme=scheme, k=k, devices=k, per_device_usage=per_device, engine_maps=maps
        )
    total = ResourceUsage(io_pins=SHARED_IO_PINS)
    for engine in engines:
        total = total + engine
    return SchemeResources(
        scheme=scheme, k=k, devices=1, per_device_usage=total, engine_maps=maps
    )


def scheme_resources(
    scheme: Scheme,
    k: int,
    base_stats: TrieStats,
    *,
    alpha: float | None = None,
    n_stages: int = 28,
    node_format: NodeFormat = DEFAULT_NODE_FORMAT,
    footprint: PeFootprint = PAPER_PE_FOOTPRINT,
) -> SchemeResources:
    """Evaluate Eq. 1 / 3 / 5 for a scenario.

    ``base_stats`` describes one virtual network's (leaf-pushed) trie;
    Assumption 2 makes all K tables structurally identical.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    word_width = node_format.pointer_bits
    if scheme is Scheme.VM:
        if k > 1 and alpha is None:
            raise ConfigurationError("merged scheme requires alpha")
        merged = merged_stage_map(base_stats, k, alpha if alpha is not None else 1.0, n_stages, node_format)
        usage = _engine_usage(merged, footprint, word_width)
        usage = usage + ResourceUsage(io_pins=SHARED_IO_PINS)
        return SchemeResources(
            scheme=scheme, k=k, devices=1, per_device_usage=usage, engine_maps=(merged,)
        )

    base_map = engine_stage_map(base_stats, n_stages, node_format)
    engine = _engine_usage(base_map, footprint, word_width)
    if scheme is Scheme.NV:
        per_device = engine + ResourceUsage(io_pins=SHARED_IO_PINS)
        return SchemeResources(
            scheme=scheme,
            k=k,
            devices=k,
            per_device_usage=per_device,
            engine_maps=tuple(base_map for _ in range(k)),
        )
    # VS: K engines plus the shared pins on one device
    per_device = engine.scaled(k) + ResourceUsage(io_pins=SHARED_IO_PINS)
    return SchemeResources(
        scheme=scheme,
        k=k,
        devices=1,
        per_device_usage=per_device,
        engine_maps=tuple(base_map for _ in range(k)),
    )
