"""Scenario estimator: one config → model + "experimental" results.

This is the library's front door.  A :class:`ScenarioEstimator`
evaluates a :class:`~repro.core.config.ScenarioConfig` end to end:

1. build (and cache) the reference trie statistics from the synthetic
   routing table;
2. size every engine's stage memories (Eqs. 1/3/5 resource models);
3. run the place-and-route simulator to get the achieved clock and
   the implemented design;
4. evaluate the analytical power model (Eqs. 2/4/6) at the operating
   frequency — the paper's *estimation*;
5. run the XPower-Analyzer-like reporter over the placed design — the
   paper's *experimental* value;
6. derive throughput, mW/Gbps and the model's percentage error.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.metrics import mw_per_gbps, throughput_gbps
from repro.core.power import AnalyticalPowerModel, PowerBreakdown
from repro.core.resources import SchemeResources, scheme_resources
from repro.errors import ConfigurationError
from repro.fpga.placer import ENGINE_IO_PINS, EngineNetlist, PlaceAndRoute, PlacedDesign
from repro.fpga.power_report import PowerReport, XPowerAnalyzer
from repro.iplookup.leafpush import leaf_push
from repro.iplookup.synth import SyntheticTableConfig, generate_table
from repro.iplookup.trie import TrieStats, UnibitTrie
from repro.virt.schemes import Scheme

__all__ = ["ScenarioEstimator", "ScenarioResult", "ExperimentalPower", "base_trie_stats"]


@lru_cache(maxsize=16)
def base_trie_stats(table_config: SyntheticTableConfig) -> TrieStats:
    """Leaf-pushed trie statistics of the reference table (cached).

    Assumption 2 makes every virtual network's table structurally
    identical to this worst-case table.
    """
    table = generate_table(table_config)
    return leaf_push(UnibitTrie(table)).stats()


@dataclass(frozen=True)
class ExperimentalPower:
    """Aggregated post-P&R power over all devices of a scenario."""

    static_w: float
    logic_w: float
    signal_w: float
    bram_w: float

    @property
    def dynamic_w(self) -> float:
        return self.logic_w + self.signal_w + self.bram_w

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w

    @classmethod
    def from_reports(cls, reports: list[PowerReport]) -> "ExperimentalPower":
        return cls(
            static_w=sum(r.static_w for r in reports),
            logic_w=sum(r.logic_w for r in reports),
            signal_w=sum(r.signal_w for r in reports),
            bram_w=sum(r.bram_w for r in reports),
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Everything the experiments need about one evaluated scenario."""

    config: ScenarioConfig
    base_stats: TrieStats
    resources: SchemeResources
    placed: PlacedDesign
    fmax_mhz: float
    frequency_mhz: float
    model: PowerBreakdown
    experimental: ExperimentalPower
    throughput_gbps: float

    @property
    def n_engines(self) -> int:
        """Parallel pipelines contributing capacity."""
        return self.config.scheme.engines_required(self.config.k)

    @property
    def model_mw_per_gbps(self) -> float:
        """Efficiency metric from the analytical model."""
        return mw_per_gbps(self.model.total_w, self.throughput_gbps)

    @property
    def experimental_mw_per_gbps(self) -> float:
        """Efficiency metric from the post-P&R measurement."""
        return mw_per_gbps(self.experimental.total_w, self.throughput_gbps)

    @property
    def percentage_error(self) -> float:
        """Fig. 7's metric: (model − experimental)/experimental × 100."""
        return (
            (self.model.total_w - self.experimental.total_w)
            / self.experimental.total_w
            * 100.0
        )


class ScenarioEstimator:
    """Evaluate scenarios against one cached reference table."""

    def __init__(self) -> None:
        self._analyzer = XPowerAnalyzer()

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _netlists(config: ScenarioConfig, resources: SchemeResources) -> list[EngineNetlist]:
        width = config.node_format.pointer_bits
        netlists = []
        for i, stage_map in enumerate(resources.engine_maps):
            netlists.append(
                EngineNetlist(
                    label=f"{config.scheme.name.lower()}-engine-{i}",
                    stage_memory_bits=np.asarray(stage_map.bits_per_stage),
                    word_width=width,
                    io_pins=ENGINE_IO_PINS,
                )
            )
        return netlists

    def evaluate(self, config: ScenarioConfig) -> ScenarioResult:
        """Run the full pipeline for one scenario configuration."""
        stats = base_trie_stats(config.table)
        resources = scheme_resources(
            config.scheme,
            config.k,
            stats,
            alpha=config.alpha,
            n_stages=config.n_stages,
            node_format=config.node_format,
        )
        netlists = self._netlists(config, resources)
        pnr = PlaceAndRoute(config.device, config.grade)
        mu = config.utilization_vector()

        if config.scheme is Scheme.NV:
            # K identical single-engine devices; place one and replicate.
            placed = pnr.place([netlists[0]], name=config.label())
            fmax = placed.fmax_mhz
            f = config.frequency_mhz if config.frequency_mhz is not None else fmax
            if f > fmax + 1e-9:
                raise ConfigurationError(
                    f"requested {f} MHz exceeds achievable fmax {fmax:.1f} MHz"
                )
            reports = [
                self._analyzer.report(
                    placed, f, np.array([mu_i * config.duty_cycle])
                )
                for mu_i in mu
            ]
            experimental = ExperimentalPower.from_reports(reports)
        else:
            placed = pnr.place(netlists, name=config.label())
            fmax = placed.fmax_mhz
            f = config.frequency_mhz if config.frequency_mhz is not None else fmax
            if f > fmax + 1e-9:
                raise ConfigurationError(
                    f"requested {f} MHz exceeds achievable fmax {fmax:.1f} MHz"
                )
            if config.scheme is Scheme.VS:
                activities = mu * config.duty_cycle
            else:  # VM: one engine at the aggregate duty cycle
                activities = np.array([config.duty_cycle])
            report = self._analyzer.report(placed, f, activities)
            experimental = ExperimentalPower.from_reports([report])

        model_eval = AnalyticalPowerModel(config.grade, config.device)
        engine_maps = list(resources.engine_maps)
        if config.scheme is Scheme.NV:
            model = model_eval.power_nv(engine_maps, f, mu, config.duty_cycle)
        elif config.scheme is Scheme.VS:
            model = model_eval.power_vs(engine_maps, f, mu, config.duty_cycle)
        else:
            model = model_eval.power_vm(engine_maps[0], f, config.duty_cycle)

        capacity = throughput_gbps(f, config.scheme.engines_required(config.k))
        return ScenarioResult(
            config=config,
            base_stats=stats,
            resources=resources,
            placed=placed,
            fmax_mhz=fmax,
            frequency_mhz=f,
            model=model,
            experimental=experimental,
            throughput_gbps=capacity,
        )

    def sweep_k(self, template: ScenarioConfig, ks: list[int]) -> list[ScenarioResult]:
        """Evaluate ``template`` at each K in ``ks`` (figure sweeps)."""
        from dataclasses import replace

        return [self.evaluate(replace(template, k=k)) for k in ks]
