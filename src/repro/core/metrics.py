"""Throughput and power-efficiency metrics (paper Section VI-B).

The paper's efficiency metric is power per unit throughput, mW/Gbps,
with throughput computed from the packet handling rate at minimum
packet size (40 bytes): a linear pipeline admits one lookup per clock,
so one engine at ``f`` MHz handles ``f × 10⁶`` packets/s, i.e.
``f × 320 × 10⁻³`` Gbps.  Lower mW/Gbps is better.
"""

from __future__ import annotations

from repro.core.invariants import monotone_in
from repro.errors import ConfigurationError
from repro.units import MIN_PACKET_BYTES, gbps, j_to_nj, mhz_to_hz, mw_to_w, s_to_ns, w_to_mw

__all__ = [
    "throughput_gbps",
    "mw_per_gbps",
    "energy_per_packet_nj",
    "watts_per_gbps",
    "lookup_latency_ns",
]


@monotone_in("frequency_mhz", "n_engines")
def throughput_gbps(
    frequency_mhz: float,
    n_engines: int = 1,
    packet_bytes: int = MIN_PACKET_BYTES,
) -> float:
    """Aggregate lookup capacity of ``n_engines`` parallel pipelines.

    NV and VS deployments aggregate K engines; the merged scheme has a
    single time-shared engine (its throughput is *shared* among the
    virtual networks — the scalability limit of Section IV-C).
    """
    if n_engines < 0:
        raise ConfigurationError(f"n_engines must be non-negative, got {n_engines}")
    return n_engines * gbps(frequency_mhz, packet_bytes)


@monotone_in("total_power_w")
def mw_per_gbps(total_power_w: float, capacity_gbps: float) -> float:
    """The paper's efficiency metric: milliwatts per Gbps of capacity."""
    if total_power_w < 0:
        raise ConfigurationError("power must be non-negative")
    if capacity_gbps <= 0:
        raise ConfigurationError("capacity must be positive")
    return w_to_mw(total_power_w) / capacity_gbps


def watts_per_gbps(total_power_w: float, capacity_gbps: float) -> float:
    """Same metric in W/Gbps (the unit the paper names in prose)."""
    return mw_to_w(mw_per_gbps(total_power_w, capacity_gbps))


def lookup_latency_ns(frequency_mhz: float, n_stages: int = 28) -> float:
    """Per-packet lookup latency of the linear pipeline, in ns.

    One cycle per stage plus the exit register ("pipelining improves
    the performance while reducing the latency", Section II-A —
    relative to a sequential N-access walk at the same clock).
    """
    if frequency_mhz <= 0:
        raise ConfigurationError("frequency must be positive")
    if n_stages < 1:
        raise ConfigurationError("n_stages must be >= 1")
    return s_to_ns((n_stages + 1) / mhz_to_hz(frequency_mhz))


@monotone_in("total_power_w")
def energy_per_packet_nj(
    total_power_w: float,
    frequency_mhz: float,
    n_engines: int = 1,
) -> float:
    """Energy spent per forwarded packet, in nanojoules."""
    if frequency_mhz <= 0 or n_engines <= 0:
        raise ConfigurationError("frequency and engine count must be positive")
    packets_per_second = mhz_to_hz(frequency_mhz) * n_engines
    return j_to_nj(total_power_w / packets_per_second)
