"""Machine-checkable invariant annotations for model equations.

The paper's component models carry structural guarantees the equations
make obvious but code can silently lose — logic power is *linear* (and
therefore monotone) in frequency, BRAM power is monotone in block
count, total power is monotone in every dynamic component.  This
module provides lightweight decorators that attach those declarations
to the function object:

>>> @monotone_in("frequency_mhz")
... def stage_power_uw(frequency_mhz: float) -> float:
...     return 5.18 * frequency_mhz

The declarations are enforced twice:

* **statically** — ``repro-lint`` rule ``INV001`` requires every
  annotated function to be exercised by a hypothesis property test
  (the test must mention the function by name under
  ``tests/property``);
* **dynamically** — :func:`check_monotone` is the shared harness those
  property tests call to falsify the declaration on sampled inputs.

This module must stay free of ``repro`` imports: model modules in
``repro.fpga`` and ``repro.core`` import it while the package tree is
still initialising.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

__all__ = [
    "Invariant",
    "monotone_in",
    "nonnegative",
    "declared_invariants",
    "check_monotone",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: attribute name under which declarations are stored on the function
_ATTR = "__repro_invariants__"


@dataclass(frozen=True, slots=True)
class Invariant:
    """One declared property of a model function.

    ``kind`` is ``"monotone"`` (non-decreasing in each named parameter,
    all else fixed) or ``"nonnegative"`` (result is ``>= 0`` on the
    declared domain); ``params`` names the parameters the declaration
    quantifies over (empty for result-only invariants).
    """

    kind: str
    params: tuple[str, ...] = ()


def _attach(func: _F, invariant: Invariant) -> _F:
    existing = list(getattr(func, _ATTR, ()))
    existing.append(invariant)
    setattr(func, _ATTR, tuple(existing))
    return func


def monotone_in(*params: str) -> Callable[[_F], _F]:
    """Declare the result non-decreasing in each named parameter.

    The decorator validates the names against the signature at
    decoration time, so a typo fails at import rather than silently
    declaring nothing.
    """
    if not params:
        raise ValueError("monotone_in requires at least one parameter name")

    def decorate(func: _F) -> _F:
        known = set(inspect.signature(func).parameters)
        unknown = [p for p in params if p not in known]
        if unknown:
            raise ValueError(
                f"{func.__qualname__}: monotone_in names unknown parameter(s) {unknown}"
            )
        return _attach(func, Invariant(kind="monotone", params=tuple(params)))

    return decorate


def nonnegative(func: _F) -> _F:
    """Declare the result ``>= 0`` everywhere on the function's domain."""
    return _attach(func, Invariant(kind="nonnegative"))


def declared_invariants(func: Callable[..., Any]) -> tuple[Invariant, ...]:
    """The invariants declared on ``func`` (empty tuple when none)."""
    return getattr(func, _ATTR, ())


def check_monotone(
    func: Callable[..., float],
    param: str,
    values: Sequence[float],
    tolerance: float = 1e-12,
    **fixed: Any,
) -> None:
    """Assert ``func`` is non-decreasing in ``param`` over ``values``.

    ``values`` are sorted before evaluation; every other argument is
    held at ``fixed``.  Property tests call this with hypothesis-drawn
    values so each declared :func:`monotone_in` is falsifiable.
    """
    ordered = sorted(values)
    outputs = [func(**{param: value, **fixed}) for value in ordered]
    for (x0, y0), (x1, y1) in zip(zip(ordered, outputs), zip(ordered[1:], outputs[1:])):
        if y1 < y0 - tolerance:
            raise AssertionError(
                f"{func.__qualname__} not monotone in {param}: "
                f"f({x0})={y0} > f({x1})={y1}"
            )
