"""Scenario configuration (paper Section III assumptions, as data).

A :class:`ScenarioConfig` pins down everything needed to evaluate one
point of the paper's evaluation: scheme, number of virtual networks,
speed grade, merging efficiency (merged scheme only), pipeline depth,
utilization vector and operating frequency policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.catalog import XC6VLX760
from repro.fpga.device import DeviceSpec
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.mapping import DEFAULT_NODE_FORMAT, PAPER_PIPELINE_STAGES, NodeFormat
from repro.iplookup.synth import SyntheticTableConfig
from repro.virt.schemes import Scheme

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One evaluation point of the paper's design space.

    Attributes
    ----------
    scheme:
        NV, VS or VM.
    k:
        Number of (virtual) networks, K.
    grade:
        Speed grade (-2 or -1L).
    alpha:
        Merging efficiency — the *pairwise/model* α swept in the
        figures (20 % and 80 %).  Required for VM, ignored otherwise.
    n_stages:
        Pipeline depth N (paper: 28).
    device:
        Target FPGA part.
    node_format:
        Stage-memory node encoding.
    utilizations:
        Per-VN load vector µ; ``None`` means Assumption 1 (uniform).
    duty_cycle:
        Overall offered-load fraction (1 = saturated line rate).
    frequency_mhz:
        Operating clock; ``None`` means "run at the achieved fmax",
        which is what the paper's post-P&R numbers report.
    table:
        Synthetic-table generator parameters for the per-VN routing
        tables (the paper's 3 725-prefix worst case by default).
    """

    scheme: Scheme
    k: int
    grade: SpeedGrade = SpeedGrade.G2
    alpha: float | None = None
    n_stages: int = PAPER_PIPELINE_STAGES
    device: DeviceSpec = XC6VLX760
    node_format: NodeFormat = DEFAULT_NODE_FORMAT
    utilizations: tuple[float, ...] | None = None
    duty_cycle: float = 1.0
    frequency_mhz: float | None = None
    table: SyntheticTableConfig = field(default_factory=SyntheticTableConfig)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.n_stages < 1:
            raise ConfigurationError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.scheme is Scheme.VM:
            if self.k > 1 and self.alpha is None:
                raise ConfigurationError("merged scheme requires a merging efficiency alpha")
            if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
                raise ConfigurationError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.utilizations is not None:
            mu = np.asarray(self.utilizations, dtype=float)
            if len(mu) != self.k:
                raise ConfigurationError(
                    f"utilizations must have length k={self.k}, got {len(mu)}"
                )
            if (mu < 0).any() or abs(mu.sum() - 1.0) > 1e-9:
                raise ConfigurationError("utilizations must be non-negative and sum to 1")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        if self.frequency_mhz is not None and self.frequency_mhz <= 0:
            raise ConfigurationError("frequency_mhz must be positive")

    def utilization_vector(self) -> np.ndarray:
        """The effective µ vector (Assumption 1 when unspecified)."""
        if self.utilizations is None:
            return np.full(self.k, 1.0 / self.k)
        return np.asarray(self.utilizations, dtype=float)

    def label(self) -> str:
        """Short human-readable identifier, e.g. ``"VM(a=0.8) K=8 -2"``."""
        if self.scheme is Scheme.VM and self.alpha is not None:
            scheme = f"VM(a={self.alpha:g})"
        else:
            scheme = self.scheme.name
        return f"{scheme} K={self.k} {self.grade}"

    def with_k(self, k: int) -> "ScenarioConfig":
        """Copy of this config at a different K (sweep helper)."""
        return replace(self, k=k, utilizations=None if self.utilizations is None else None)
