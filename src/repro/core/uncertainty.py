"""Uncertainty propagation through the power models.

The paper quotes tolerances rather than point values: static power is
"4.5 ± 5 % W" (Section V-A) and the model validates within ±3 %
(Section VI-A).  This module propagates component tolerances through
Eqs. 2/4/6 by interval arithmetic — every dynamic term is monotone in
its coefficient, so evaluating the model at the coefficient extremes
bounds the output exactly — yielding power *bounds* instead of point
estimates, and a check that the simulated "experimental" values fall
inside them.
"""

from __future__ import annotations

from collections.abc import Sequence

from dataclasses import dataclass

import numpy as np

from repro.core.power import AnalyticalPowerModel, PowerBreakdown
from repro.errors import ConfigurationError
from repro.fpga.static_power import STATIC_VARIATION
from repro.iplookup.mapping import StageMemoryMap
from repro.virt.schemes import Scheme

__all__ = ["Tolerances", "PowerBounds", "power_bounds"]


@dataclass(frozen=True, slots=True)
class Tolerances:
    """Relative component tolerances (fractions, not percent).

    Defaults follow the paper: ±5 % static (Section V-A) and a ±3 %
    envelope on the dynamic coefficients (the Fig. 7 validation bound,
    which subsumes placement/optimization variation).
    """

    static: float = STATIC_VARIATION
    logic: float = 0.03
    memory: float = 0.03

    def __post_init__(self) -> None:
        for name in ("static", "logic", "memory"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} tolerance must be in [0, 1)")


@dataclass(frozen=True)
class PowerBounds:
    """Interval estimate for one scenario's total power."""

    scheme: Scheme
    k: int
    nominal_w: float
    low_w: float
    high_w: float

    def __post_init__(self) -> None:
        # tiny epsilon: the nominal sums its components in a different
        # association order than the bounds, so allow float slack
        eps = 1e-12 * max(1.0, abs(self.nominal_w))  # repro-lint: disable=UNIT001 (relative slack, not a conversion)
        if not self.low_w - eps <= self.nominal_w <= self.high_w + eps:
            raise ConfigurationError("bounds must bracket the nominal value")

    @property
    def width_w(self) -> float:
        """Interval width."""
        return self.high_w - self.low_w

    @property
    def half_width_pct(self) -> float:
        """Symmetric half-width as a percentage of nominal."""
        if self.nominal_w == 0:
            return 0.0
        return self.width_w / 2 / self.nominal_w * 100.0

    def contains(self, value_w: float) -> bool:
        """True if a measured value falls inside the bounds."""
        return self.low_w <= value_w <= self.high_w


def _evaluate(
    model: AnalyticalPowerModel,
    scheme: Scheme,
    engine_maps: list[StageMemoryMap],
    frequency_mhz: float,
    utilizations: np.ndarray,
    duty_cycle: float,
) -> PowerBreakdown:
    if scheme is Scheme.NV:
        return model.power_nv(engine_maps, frequency_mhz, utilizations, duty_cycle)
    if scheme is Scheme.VS:
        return model.power_vs(engine_maps, frequency_mhz, utilizations, duty_cycle)
    return model.power_vm(engine_maps[0], frequency_mhz, duty_cycle)


def power_bounds(
    model: AnalyticalPowerModel,
    scheme: Scheme,
    engine_maps: list[StageMemoryMap],
    frequency_mhz: float,
    utilizations: Sequence[float] | np.ndarray,
    *,
    duty_cycle: float = 1.0,
    tolerances: Tolerances = Tolerances(),
) -> PowerBounds:
    """Propagate component tolerances through one scheme evaluation.

    Every term of Eqs. 2/4/6 is a non-negative coefficient times a
    non-negative activity, so the total is monotone in each component:
    scaling all components down (up) by their tolerances gives the
    exact lower (upper) bound of the interval extension.
    """
    mu = np.asarray(utilizations, dtype=float)
    nominal = _evaluate(model, scheme, engine_maps, frequency_mhz, mu, duty_cycle)
    low = (
        nominal.static_w * (1 - tolerances.static)
        + nominal.logic_w * (1 - tolerances.logic)
        + nominal.memory_w * (1 - tolerances.memory)
    )
    high = (
        nominal.static_w * (1 + tolerances.static)
        + nominal.logic_w * (1 + tolerances.logic)
        + nominal.memory_w * (1 + tolerances.memory)
    )
    return PowerBounds(
        scheme=scheme,
        k=nominal.k,
        nominal_w=nominal.total_w,
        low_w=low,
        high_w=high,
    )
