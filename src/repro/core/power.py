"""Analytical power models: P_NV, P_VS, P_VM (paper Eqs. 2, 4, 6).

Power decomposes into three components (paper Section IV):

* **static** — ``P_L`` per powered device, paid regardless of load;
* **logic** — per-stage PE power, linear in frequency (Section V-C);
* **memory** — per-stage BRAM power from the Table III block model.

Dynamic components scale with each virtual router's utilization µᵢ
(Assumption 1: µᵢ = 1/K), because idle resources are flag-disabled or
clock-gated (Section IV).  The models are:

* **Eq. 2** — P_NV = Σᵢ (P_L + µᵢ Σⱼ (P(L_{i,j}) + P(M_{i,j})))
* **Eq. 4** — P_VS = P_L + Σᵢ µᵢ Σⱼ (P(L_{i,j}) + P(M_{i,j}))
* **Eq. 6** — P_VM = P_L + Σⱼ (P(L_{0,j}) + P(M̃ⱼ))

The merged engine's dynamic power carries no µ factor: the single
pipeline serves the aggregate stream at full duty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.bram import (
    PAPER_WRITE_RATE,
    BramKind,
    bram_dynamic_power_uw,
    pack_stage_memory,
)
from repro.fpga.catalog import XC6VLX760
from repro.fpga.clocking import PAPER_CLOCK_GATING, ClockGating
from repro.fpga.device import DeviceSpec
from repro.fpga.logic import PAPER_PE_FOOTPRINT, PeFootprint, stage_logic_power_uw
from repro.fpga.speedgrade import SpeedGrade, grade_data
from repro.fpga.static_power import static_power_w
from repro.iplookup.mapping import StageMemoryMap
from repro.units import uw_to_w
from repro.virt.schemes import Scheme

__all__ = ["PowerBreakdown", "AnalyticalPowerModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Model output: power by component, in watts."""

    scheme: Scheme
    k: int
    frequency_mhz: float
    static_w: float
    logic_w: float
    memory_w: float

    @property
    def dynamic_w(self) -> float:
        return self.logic_w + self.memory_w

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w


class AnalyticalPowerModel:
    """Evaluator of Eqs. 2, 4 and 6 over stage memory maps.

    Parameters
    ----------
    grade:
        Speed grade (selects P_L and all dynamic coefficients).
    device:
        FPGA part (scales static power for non-LX760 parts).
    clock_gating:
        Idle-resource policy; the paper's default gates everything,
        making dynamic power proportional to utilization.
    write_rate:
        Routing-table update rate applied to every stage memory.
    footprint:
        Per-stage PE resource counts.
    """

    def __init__(
        self,
        grade: SpeedGrade,
        device: DeviceSpec = XC6VLX760,
        clock_gating: ClockGating = PAPER_CLOCK_GATING,
        write_rate: float = PAPER_WRITE_RATE,
        footprint: PeFootprint = PAPER_PE_FOOTPRINT,
    ):
        self.grade = grade
        self.device = device
        self.clock_gating = clock_gating
        self.write_rate = write_rate
        self.footprint = footprint

    # -- component terms ----------------------------------------------------

    @property
    def static_w(self) -> float:
        """P_L: the representative per-device leakage (Section V-A)."""
        return static_power_w(self.grade, usage=None, device=self.device)

    def stage_logic_power_w(self, frequency_mhz: float, activity: float = 1.0) -> float:
        """P(L_{i,j}): one stage's logic + signal power."""
        effective = self.clock_gating.logic_activity(activity)
        return uw_to_w(
            stage_logic_power_uw(frequency_mhz, self.grade, self.footprint, effective)
        )

    def stage_memory_power_w(
        self, bits: int, frequency_mhz: float, activity: float = 1.0, width: int | None = None
    ) -> float:
        """P(M_{i,j}): one stage memory's BRAM power (Table III).

        The stage's bits are packed into 36 Kb blocks with a trailing
        18 Kb primitive (the ⌈M/18K⌉ / ⌈M/36K⌉ quantization of
        Table III), each priced at its per-block coefficient.
        """
        width = width or 18
        enable = self.clock_gating.memory_activity(activity)
        packing = pack_stage_memory(bits, width)
        power_uw = bram_dynamic_power_uw(
            frequency_mhz,
            self.grade,
            BramKind.B36,
            packing.blocks36,
            write_rate=self.write_rate,
            read_width=width,
            enable_rate=enable,
        ) + bram_dynamic_power_uw(
            frequency_mhz,
            self.grade,
            BramKind.B18,
            packing.blocks18,
            write_rate=self.write_rate,
            read_width=width,
            enable_rate=enable,
        )
        return uw_to_w(power_uw)

    def engine_dynamic_power_w(
        self, stage_map: StageMemoryMap, frequency_mhz: float, activity: float = 1.0
    ) -> tuple[float, float]:
        """(logic, memory) dynamic power of one engine at ``activity``.

        Implements the inner Σⱼ (P(L_{i,j}) + P(M_{i,j})) of the
        equations; the µᵢ factor is the ``activity`` argument.
        """
        width = stage_map.node_format.pointer_bits
        logic = stage_map.n_stages * self.stage_logic_power_w(frequency_mhz, activity)
        memory = sum(
            self.stage_memory_power_w(int(bits), frequency_mhz, activity, width)
            for bits in stage_map.bits_per_stage
        )
        return logic, memory

    # -- scheme models --------------------------------------------------------

    def _check_inputs(
        self, engine_maps, utilizations: np.ndarray, duty_cycle: float
    ) -> np.ndarray:
        mu = np.asarray(utilizations, dtype=float)
        if len(mu) != len(engine_maps):
            raise ConfigurationError(
                f"need one utilization per engine: {len(engine_maps)} engines, "
                f"{len(mu)} utilizations"
            )
        if (mu < 0).any() or mu.sum() > 1.0 + 1e-9:
            raise ConfigurationError("utilizations must be non-negative and sum to <= 1")
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        return mu

    def power_nv(
        self,
        engine_maps: list[StageMemoryMap],
        frequency_mhz: float,
        utilizations: np.ndarray,
        duty_cycle: float = 1.0,
    ) -> PowerBreakdown:
        """Eq. 2: K devices, device i at activity µᵢ·duty."""
        mu = self._check_inputs(engine_maps, utilizations, duty_cycle)
        k = len(engine_maps)
        logic = memory = 0.0
        for stage_map, mu_i in zip(engine_maps, mu):
            l, m = self.engine_dynamic_power_w(
                stage_map, frequency_mhz, float(mu_i) * duty_cycle
            )
            logic += l
            memory += m
        return PowerBreakdown(
            scheme=Scheme.NV,
            k=k,
            frequency_mhz=frequency_mhz,
            static_w=k * self.static_w,
            logic_w=logic,
            memory_w=memory,
        )

    def power_vs(
        self,
        engine_maps: list[StageMemoryMap],
        frequency_mhz: float,
        utilizations: np.ndarray,
        duty_cycle: float = 1.0,
    ) -> PowerBreakdown:
        """Eq. 4: one device, K engines, engine i at activity µᵢ·duty."""
        mu = self._check_inputs(engine_maps, utilizations, duty_cycle)
        logic = memory = 0.0
        for stage_map, mu_i in zip(engine_maps, mu):
            l, m = self.engine_dynamic_power_w(
                stage_map, frequency_mhz, float(mu_i) * duty_cycle
            )
            logic += l
            memory += m
        return PowerBreakdown(
            scheme=Scheme.VS,
            k=len(engine_maps),
            frequency_mhz=frequency_mhz,
            static_w=self.static_w,
            logic_w=logic,
            memory_w=memory,
        )

    def power_vm(
        self,
        merged_map: StageMemoryMap,
        frequency_mhz: float,
        duty_cycle: float = 1.0,
    ) -> PowerBreakdown:
        """Eq. 6: one device, one engine at the aggregate duty cycle."""
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        logic, memory = self.engine_dynamic_power_w(merged_map, frequency_mhz, duty_cycle)
        return PowerBreakdown(
            scheme=Scheme.VM,
            k=merged_map.nhi_vector_width,
            frequency_mhz=frequency_mhz,
            static_w=self.static_w,
            logic_w=logic,
            memory_w=memory,
        )

    def grade_summary(self) -> str:
        """One-line description of the model's calibration point."""
        data = grade_data(self.grade)
        return (
            f"grade {self.grade}: PL={data.static_power_w} W, "
            f"logic {data.logic_stage_uw_per_mhz} uW/MHz/stage, "
            f"BRAM {data.bram18_uw_per_mhz}/{data.bram36_uw_per_mhz} uW/MHz/block"
        )
