"""Closed-loop DVS governor: measured load in, operating voltage out.

The paper's -2 vs -1L comparison is a *static* choice between two
operating points; :mod:`repro.fpga.dvs` generalizes it to a continuous
voltage space.  This module closes the loop: a :class:`DvsGovernor`
attached to a :class:`~repro.serve.service.LookupService` or
:class:`~repro.serve.frontend.ShardedLookupService` samples the live
``repro_serve_duty_cycle`` and ``repro_serve_queue_wait_ns`` gauges
after every served batch, estimates the *demand* (offered load as a
fraction of the base -2 clock), and picks the minimum voltage whose
scaled fmax still carries that demand with headroom — the classic
race-to-idle inversion, evaluated through the closed-form
:func:`repro.fpga.dvs.voltage_for_frequency_scale`.

Control law
-----------
1. **Calibrate** once: the first observed batch fixes the workload's
   intrinsic memory activity ``A = duty / utilization`` (walk depth
   distribution), which converts the measured duty cycle back into a
   utilization estimate on every later batch.
2. **Estimate demand**: ``demand = (duty / A) x fmax_scale`` — the
   offered load re-expressed against the base clock, so it is
   invariant under the governor's own re-clocking.
3. **Pick the point**: target fmax scale = ``demand / headroom``,
   clamped to the policy's voltage band, inverted in closed form to
   the minimum sustaining voltage.
4. **Queue guard**: a measured queue wait above the policy budget
   overrides the demand estimate and raises the voltage one slew step
   — latency pressure beats energy savings.
5. **Slew-limit and apply**: the voltage moves at most
   ``slew_volts`` per decision; the new point is applied to the
   service (and, through it, the power sampler) and takes effect on
   the *next* batch — the decision never rewrites the telemetry of
   the batch that produced it.

Under fault degradation the measured duty cycle visibly drops (shed
arrival slots idle the pipelines), so the governor lowers the voltage
and the device *trades throughput for watts* — the realized
energy-per-lookup stays at or below the static -2 baseline at every
load point, which the ``governor`` experiment demonstrates against
both static grades.

Everything the loop does is observable: ``repro_governor_*`` gauges
and counters plus a ``governor.decide`` span per decision (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.core.metrics import energy_per_packet_nj
from repro.errors import ConfigurationError
from repro.fpga.dvs import (
    NOMINAL_VOLTAGE,
    OperatingPoint,
    frequency_scale,
    voltage_for_frequency_scale,
)
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer

if TYPE_CHECKING:  # serve imports stay type-only: serve already hooks us
    from repro.serve.service import ServeTrace

__all__ = ["GovernorPolicy", "GovernorDecision", "DvsGovernor"]


class GovernedService(Protocol):
    """What the governor needs from a serving tier (either class)."""

    scheme: object
    offered_load_fraction: float
    frequency_mhz: float
    power_sampler: object

    @property
    def operating_point(self) -> OperatingPoint:
        """The DVS operating point currently in force."""
        ...

    def apply_operating_point(self, point: OperatingPoint) -> None:
        """Re-place the tier at ``point`` (clock, capacity, sampler)."""
        ...


@dataclass(frozen=True)
class GovernorPolicy:
    """Knobs of the control law.

    Attributes
    ----------
    headroom:
        Target utilization of the chosen operating point: the governor
        sizes the clock so the estimated demand fills this fraction of
        it (the rest absorbs bursts).  Must be in (0, 1).
    v_min, v_max:
        Voltage band the governor may move within.  The default band
        is the -1L-plausible derate range — ``v_max = 1.0`` means the
        governor never overclocks the -2 baseline.
    slew_volts:
        Largest per-decision voltage step (rail slew limit).
    queue_wait_budget_ns:
        Measured input-queue wait above which latency pressure forces
        a raise regardless of the demand estimate.
    deadband_volts:
        Voltage moves smaller than this are held (no churn on noise).
    """

    headroom: float = 0.85
    v_min: float = 0.7
    v_max: float = NOMINAL_VOLTAGE
    slew_volts: float = 0.05
    queue_wait_budget_ns: float = 50.0
    deadband_volts: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.headroom < 1.0:
            raise ConfigurationError("headroom must be in (0, 1)")
        if not self.v_min < self.v_max:
            raise ConfigurationError("v_min must be below v_max")
        # both ends must be reachable operating points
        frequency_scale(self.v_min)
        frequency_scale(self.v_max)
        if self.slew_volts <= 0.0:
            raise ConfigurationError("slew_volts must be positive")
        if self.queue_wait_budget_ns <= 0.0:
            raise ConfigurationError("queue_wait_budget_ns must be positive")


@dataclass(frozen=True)
class GovernorDecision:
    """One control-loop step, as taken (post slew/deadband clamping)."""

    batch_index: int
    duty_cycle: float
    queue_wait_ns: float
    demand_fraction: float
    voltage_before: float
    voltage_after: float
    action: str  # "raise" | "lower" | "hold"
    queue_pressure: bool


class DvsGovernor:
    """The closed control loop over one serving tier's operating point.

    Attach with :meth:`attach`; the service then calls
    :meth:`on_batch` after each served batch's telemetry is published
    (metrics must be enabled — the loop input *is* the gauge surface).
    One governor drives one service; the voltage is a device-wide rail,
    so the sharded tier gets a single decision broadcast to every
    shard, with the per-shard placement view published as
    ``repro_governor_shard_volts``.
    """

    def __init__(
        self,
        policy: GovernorPolicy | None = None,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.policy = policy if policy is not None else GovernorPolicy()
        self._registry = registry
        self._tracer = tracer
        self._activity: float | None = None
        self.decisions: list[GovernorDecision] = []

    # -- wiring -------------------------------------------------------------

    def attach(self, service: GovernedService) -> "DvsGovernor":
        """Hook this governor into a service's serve path."""
        service._governor = self  # type: ignore[attr-defined]
        return self

    def reset(self) -> None:
        """Drop the activity calibration and decision history."""
        self._activity = None
        self.decisions.clear()

    # -- gauge sampling -----------------------------------------------------

    def _registry_for(self, service: GovernedService) -> MetricsRegistry:
        if self._registry is not None:
            return self._registry
        registry = getattr(service, "_registry", None)
        return registry if registry is not None else default_registry()

    def _tracer_for(self, service: GovernedService) -> Tracer:
        if self._tracer is not None:
            return self._tracer
        tracer = getattr(service, "_tracer", None)
        return tracer if tracer is not None else default_tracer()

    def _read_gauge(
        self, registry: MetricsRegistry, name: str, scheme: str
    ) -> float | None:
        family = registry.get(name)
        if family is None:
            return None
        try:
            return float(family.labels(scheme).value)
        except (KeyError, AttributeError):
            return None

    # -- the control law ----------------------------------------------------

    def _target_voltage(
        self,
        duty: float,
        queue_wait_ns: float,
        point: OperatingPoint,
    ) -> tuple[float, float, bool]:
        """``(raw target voltage, demand fraction, queue pressure?)``."""
        policy = self.policy
        assert self._activity is not None
        utilization = min(duty / self._activity, 1.0)
        demand = utilization * point.frequency_scale
        queue_pressure = queue_wait_ns > policy.queue_wait_budget_ns
        if queue_pressure:
            # latency pressure: step the rail up, ignore the estimate
            return point.voltage + policy.slew_volts, demand, True
        scale = demand / policy.headroom
        lo = frequency_scale(policy.v_min)
        hi = frequency_scale(policy.v_max)
        scale = min(max(scale, lo), hi)
        return voltage_for_frequency_scale(scale), demand, False

    def on_batch(self, service: GovernedService, trace: "ServeTrace") -> None:
        """One control-loop step (called by the serve path per batch).

        Samples the live gauges, updates the operating point for the
        *next* batch, and publishes the governor telemetry.  The first
        batch only calibrates the workload's intrinsic activity.
        """
        registry = self._registry_for(service)
        scheme = service.scheme.name  # type: ignore[attr-defined]
        duty = self._read_gauge(registry, "repro_serve_duty_cycle", scheme)
        if duty is None:
            duty = trace.mean_duty_cycle()
        queue_wait = self._read_gauge(
            registry, "repro_serve_queue_wait_ns", scheme
        )
        if queue_wait is None:
            queue_wait = 0.0
        point = service.operating_point
        utilization = service.offered_load_fraction
        if self._activity is None:
            if duty <= 0.0 or utilization <= 0.0:
                return  # nothing to calibrate against yet
            self._activity = duty / utilization
            self._publish(service, registry, trace, duty, None)
            return
        with self._tracer_for(service).span(
            "governor.decide", scheme=scheme
        ) as span:
            raw, demand, queue_pressure = self._target_voltage(
                duty, queue_wait, point
            )
            before = point.voltage
            stepped = min(
                max(raw, before - self.policy.slew_volts),
                before + self.policy.slew_volts,
            )
            after = min(max(stepped, self.policy.v_min), self.policy.v_max)
            if abs(after - before) < self.policy.deadband_volts:
                after = before
                action = "hold"
            else:
                action = "raise" if after > before else "lower"
                service.apply_operating_point(OperatingPoint(after))
            decision = GovernorDecision(
                batch_index=len(self.decisions),
                duty_cycle=duty,
                queue_wait_ns=queue_wait,
                demand_fraction=demand,
                voltage_before=before,
                voltage_after=after,
                action=action,
                queue_pressure=queue_pressure,
            )
            self.decisions.append(decision)
            span.set("duty_cycle", duty)
            span.set("demand_fraction", demand)
            span.set("voltage", after)
            span.set("action", action)
            self._publish(service, registry, trace, duty, decision)

    # -- telemetry ----------------------------------------------------------

    def realized_energy_nj(
        self, service: GovernedService, trace: "ServeTrace"
    ) -> float | None:
        """Energy per *served* lookup of the last batch, nanojoules.

        The denominator is the absolute served rate (admissions per
        second), which is invariant under the governor's re-clocking —
        so this number compares directly across operating points and
        against the static baselines.
        """
        sampler = service.power_sampler
        sample = getattr(sampler, "last_sample", None)
        if sample is None:
            return None
        served = trace.n_admitted / trace.n_packets if trace.n_packets else 0.0
        rate_mhz = service.frequency_mhz * service.offered_load_fraction * served
        if rate_mhz <= 0.0:
            return None
        n_engines = getattr(service, "n_engines", 1)
        return energy_per_packet_nj(sample.total_w, rate_mhz, n_engines)

    def baseline_energy_nj(
        self, service: GovernedService, trace: "ServeTrace"
    ) -> float | None:
        """The static -2 baseline's energy for the *same* served work.

        The sampler's scaling laws factor exactly, so the nominal-point
        power is recoverable from the scaled sample: static divides by
        V³, dynamic by V² (the fmax factor cancels — the same absolute
        work takes proportionally fewer cycles at the faster clock).
        """
        sampler = service.power_sampler
        sample = getattr(sampler, "last_sample", None)
        if sample is None:
            return None
        point = service.operating_point
        nominal_w = (
            sample.static_w / point.static_scale
            + sample.dynamic_w / point.dynamic_scale
        )
        served = trace.n_admitted / trace.n_packets if trace.n_packets else 0.0
        rate_mhz = service.frequency_mhz * service.offered_load_fraction * served
        if rate_mhz <= 0.0:
            return None
        n_engines = getattr(service, "n_engines", 1)
        return energy_per_packet_nj(nominal_w, rate_mhz, n_engines)

    def _publish(
        self,
        service: GovernedService,
        registry: MetricsRegistry,
        trace: "ServeTrace",
        duty: float,
        decision: GovernorDecision | None,
    ) -> None:
        if not registry.enabled:
            return
        scheme = service.scheme.name  # type: ignore[attr-defined]
        point = service.operating_point
        registry.gauge(
            "repro_governor_volts",
            "Operating core voltage chosen by the DVS governor",
            labels=("scheme",),
        ).labels(scheme).set(point.voltage)
        registry.gauge(
            "repro_governor_frequency_mhz",
            "Engine clock at the governed operating point",
            labels=("scheme",),
        ).labels(scheme).set(service.frequency_mhz)
        registry.gauge(
            "repro_governor_duty_cycle",
            "Duty-cycle sample the last governor decision consumed",
            labels=("scheme",),
        ).labels(scheme).set(duty)
        if decision is not None:
            registry.gauge(
                "repro_governor_demand_ratio",
                "Estimated offered load as a fraction of the base clock",
                labels=("scheme",),
            ).labels(scheme).set(decision.demand_fraction)
            registry.counter(
                "repro_governor_decisions_total",
                "Governor decisions by action (raise/lower/hold)",
                labels=("scheme", "action"),
            ).labels(scheme, decision.action).inc()
        realized = self.realized_energy_nj(service, trace)
        baseline = self.baseline_energy_nj(service, trace)
        if realized is not None and baseline is not None:
            energy = registry.gauge(
                "repro_governor_energy_nj_per_lookup",
                "Energy per served lookup at the governed point vs the "
                "static nominal baseline",
                labels=("scheme", "variant"),
            )
            energy.labels(scheme, "governed").set(realized)
            energy.labels(scheme, "static_nominal").set(baseline)
        self._publish_shard_view(service, registry, scheme)

    def _publish_shard_view(
        self,
        service: GovernedService,
        registry: MetricsRegistry,
        scheme: str,
    ) -> None:
        """The power-aware placement view across shards.

        The rail is device-wide, but each shard's admitted demand
        implies the voltage *it alone* would need — the placement
        signal of the PAPERS.md VNF-placement framing: a shard whose
        implied voltage sits far below the rail is a consolidation
        candidate.
        """
        reports = getattr(service, "admission_reports", None)
        if not reports:
            return
        gauge = registry.gauge(
            "repro_governor_shard_volts",
            "Minimum voltage each shard's own admitted demand implies",
            labels=("scheme", "shard"),
        )
        lo = frequency_scale(self.policy.v_min)
        hi = frequency_scale(self.policy.v_max)
        for shard_id, report in sorted(reports.items()):
            if report.capacity_gbps <= 0.0:
                continue
            share = float(sum(report.demands_gbps)) / report.capacity_gbps
            scale = min(max(share / self.policy.headroom, lo), hi)
            gauge.labels(scheme, shard_id).set(
                voltage_for_frequency_scale(scale)
            )
