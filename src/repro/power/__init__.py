"""Closed-loop power management over the serving tier.

:mod:`repro.power.governor` hosts the DVS governor — the control loop
that connects the CMOS voltage/frequency model of :mod:`repro.fpga.dvs`
to the live serving telemetry (measured duty cycle, measured queue
wait) and drives both serving tiers' operating point.  The
:class:`~repro.fpga.dvs.OperatingPoint` value object itself lives in
:mod:`repro.fpga.dvs` (the fpga layer imports nothing from serve, so
the shard reconfig protocol can carry it without an import cycle) and
is re-exported here for convenience.
"""

from repro.fpga.dvs import NOMINAL_POINT, OperatingPoint
from repro.power.governor import DvsGovernor, GovernorDecision, GovernorPolicy

__all__ = [
    "DvsGovernor",
    "GovernorDecision",
    "GovernorPolicy",
    "NOMINAL_POINT",
    "OperatingPoint",
]
