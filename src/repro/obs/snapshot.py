"""Serializable registry snapshots for cross-process scrape-merge.

The sharded serving tier (:mod:`repro.serve.shard`) runs one
:class:`~repro.obs.registry.MetricsRegistry` per worker process;
nothing in another process can see those live objects.  A
:class:`RegistrySnapshot` is the frozen, picklable value a shard ships
back over its pipe: every family's kind/help/labels and every child's
current value (histograms keep their exact per-bucket counts, so the
round trip is lossless).

Snapshots taken with a ``shard`` identity carry it as a real ``shard``
label appended to every sample — *at snapshot time, not registration
time*, so the in-process metric catalog (``docs/OBSERVABILITY.md``)
is unchanged and a single-process registry renders byte-identically
with or without this module.  :func:`merge_snapshots` unions
shard-labeled snapshots into one, refusing silent collisions, and
:func:`restore_registry` rebuilds a plain registry from any snapshot
so the existing exporters (:mod:`repro.obs.export`) render the merged
exposition unmodified.  ``repro-metrics snapshot --merge`` is the CLI
face of that pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "SampleSnapshot",
    "FamilySnapshot",
    "RegistrySnapshot",
    "snapshot_registry",
    "restore_registry",
    "merge_snapshots",
]

#: bumped on incompatible snapshot JSON layout changes
SNAPSHOT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SampleSnapshot:
    """One child metric's frozen state.

    Counters and gauges carry ``value``; histograms carry
    ``sum``/``count`` plus the non-cumulative ``bucket_counts``
    (one slot per finite bound, then the +Inf overflow slot).
    """

    labels: tuple[str, ...]
    value: float | None = None
    sum: float | None = None
    count: int | None = None
    bucket_counts: tuple[int, ...] | None = None


@dataclass(frozen=True)
class FamilySnapshot:
    """One metric family's frozen state (registration + samples)."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    buckets: tuple[float, ...] | None = None
    samples: tuple[SampleSnapshot, ...] = ()


@dataclass(frozen=True)
class RegistrySnapshot:
    """A whole registry's frozen state, optionally shard-labeled."""

    families: tuple[FamilySnapshot, ...] = ()
    shard: str | None = None

    def counter_total(self, name: str) -> float:
        """Sum of one counter family's samples across all label sets."""
        for family in self.families:
            if family.name == name:
                return float(
                    sum(s.value or 0.0 for s in family.samples)
                )
        return 0.0

    def to_json(self) -> str:
        """Serialize to a JSON document (see ``SNAPSHOT_SCHEMA_VERSION``)."""
        families = []
        for family in self.families:
            samples = []
            for sample in family.samples:
                record: dict[str, object] = {"labels": list(sample.labels)}
                if sample.value is not None:
                    record["value"] = sample.value
                if sample.bucket_counts is not None:
                    record["sum"] = sample.sum
                    record["count"] = sample.count
                    record["bucket_counts"] = list(sample.bucket_counts)
                samples.append(record)
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "buckets": list(family.buckets) if family.buckets else None,
                    "samples": samples,
                }
            )
        return json.dumps(
            {
                "schema_version": SNAPSHOT_SCHEMA_VERSION,
                "shard": self.shard,
                "families": families,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "RegistrySnapshot":
        """Parse a document produced by :meth:`to_json` (strict)."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as error:
            raise ObservabilityError(f"malformed snapshot JSON: {error}") from error
        if not isinstance(doc, dict) or "families" not in doc:
            raise ObservabilityError("snapshot JSON must be an object with families")
        version = doc.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise ObservabilityError(
                f"unsupported snapshot schema_version {version!r} "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        families = []
        for fam in doc["families"]:
            samples = []
            for record in fam.get("samples", ()):
                bucket_counts = record.get("bucket_counts")
                samples.append(
                    SampleSnapshot(
                        labels=tuple(record["labels"]),
                        value=record.get("value"),
                        sum=record.get("sum"),
                        count=record.get("count"),
                        bucket_counts=(
                            tuple(bucket_counts) if bucket_counts is not None else None
                        ),
                    )
                )
            buckets = fam.get("buckets")
            families.append(
                FamilySnapshot(
                    name=fam["name"],
                    kind=fam["kind"],
                    help=fam.get("help", ""),
                    label_names=tuple(fam.get("label_names", ())),
                    buckets=tuple(buckets) if buckets else None,
                    samples=tuple(samples),
                )
            )
        return cls(families=tuple(families), shard=doc.get("shard"))


def snapshot_registry(
    registry: MetricsRegistry, shard: str | int | None = None
) -> RegistrySnapshot:
    """Freeze a registry's current state into a picklable snapshot.

    With ``shard`` set, a ``shard`` label (the stringified identity)
    is appended to every family's label set and every sample — the
    merge key that keeps cross-process scrape-merge lossless.
    """
    shard_value = None if shard is None else str(shard)
    families = []
    for family in registry.collect():
        label_names = family.label_names
        if shard_value is not None:
            label_names = (*label_names, "shard")
        samples = []
        for values, child in family.samples():
            labels = values if shard_value is None else (*values, shard_value)
            if isinstance(child, Histogram):
                samples.append(
                    SampleSnapshot(
                        labels=labels,
                        sum=child.sum,
                        count=child.count,
                        bucket_counts=child.bucket_counts(),
                    )
                )
            else:
                samples.append(SampleSnapshot(labels=labels, value=child.value))
        families.append(
            FamilySnapshot(
                name=family.name,
                kind=family.kind,
                help=family.help,
                label_names=label_names,
                buckets=family.buckets if family.kind == "histogram" else None,
                samples=tuple(samples),
            )
        )
    return RegistrySnapshot(families=tuple(families), shard=shard_value)


def restore_registry(snapshot: RegistrySnapshot) -> MetricsRegistry:
    """Rebuild a live registry holding the snapshot's exact values.

    The result renders byte-identically to the source registry through
    :func:`repro.obs.export.render_prometheus` /
    :func:`~repro.obs.export.render_metrics_jsonl` — the lossless
    round trip the snapshot suite pins.
    """
    registry = MetricsRegistry(enabled=False)
    for family in snapshot.families:
        if family.kind == "counter":
            built = registry.counter(family.name, family.help, family.label_names)
        elif family.kind == "gauge":
            built = registry.gauge(family.name, family.help, family.label_names)
        elif family.kind == "histogram":
            built = registry.histogram(
                family.name,
                family.help,
                family.label_names,
                family.buckets or (),
            )
        else:
            raise ObservabilityError(
                f"snapshot family {family.name!r} has unknown kind {family.kind!r}"
            )
        for sample in family.samples:
            child = built.labels(*sample.labels)
            if isinstance(child, Histogram):
                if sample.bucket_counts is None or sample.count is None:
                    raise ObservabilityError(
                        f"histogram sample of {family.name!r} lacks bucket counts"
                    )
                if len(sample.bucket_counts) != len(child.bounds) + 1:
                    raise ObservabilityError(
                        f"histogram sample of {family.name!r} carries "
                        f"{len(sample.bucket_counts)} bucket slots for "
                        f"{len(child.bounds)} bounds"
                    )
                child._bucket_counts = list(sample.bucket_counts)
                child._sum = float(sample.sum or 0.0)
                child._count = int(sample.count)
            elif isinstance(child, (Counter, Gauge)):
                child._value = float(sample.value or 0.0)
    return registry


def merge_snapshots(snapshots: list[RegistrySnapshot]) -> RegistrySnapshot:
    """Union shard snapshots into one multi-shard snapshot, losslessly.

    Families sharing a name must agree on kind and label names (the
    shard label makes per-shard registrations of the same family
    compatible); two samples with identical label values collide and
    raise — merging is a *union*, never a silent sum, so a dropped or
    doubled scrape can't fabricate traffic.  Bucket bounds must match
    for histogram families.  The merged snapshot carries no ``shard``
    of its own (its samples do, in their labels).
    """
    merged: dict[str, FamilySnapshot] = {}
    seen: dict[str, set[tuple[str, ...]]] = {}
    for snapshot in snapshots:
        for family in snapshot.families:
            existing = merged.get(family.name)
            if existing is None:
                merged[family.name] = family
                seen[family.name] = {s.labels for s in family.samples}
                continue
            if (
                existing.kind != family.kind
                or existing.label_names != family.label_names
                or existing.buckets != family.buckets
            ):
                raise ObservabilityError(
                    f"cannot merge family {family.name!r}: "
                    f"{existing.kind}{existing.label_names} vs "
                    f"{family.kind}{family.label_names}"
                )
            collisions = seen[family.name] & {s.labels for s in family.samples}
            if collisions:
                raise ObservabilityError(
                    f"sample collision merging {family.name!r}: "
                    f"{sorted(collisions)[0]} appears in two snapshots "
                    "(label your snapshots with distinct shards)"
                )
            seen[family.name].update(s.labels for s in family.samples)
            merged[family.name] = FamilySnapshot(
                name=existing.name,
                kind=existing.kind,
                help=existing.help,
                label_names=existing.label_names,
                buckets=existing.buckets,
                samples=tuple(
                    sorted(
                        (*existing.samples, *family.samples),
                        key=lambda s: s.labels,
                    )
                ),
            )
    return RegistrySnapshot(
        families=tuple(merged[name] for name in sorted(merged)), shard=None
    )
