"""Metrics registry: counters, gauges and fixed-bucket histograms.

This is the runtime side of the paper's measurement story: where the
experiments evaluate the power model offline (Figs. 5–8), the serving
layer and experiment engine publish *live* counters through the
registry defined here.  Conventions follow the Prometheus data model:

* **counter** — monotonically non-decreasing total (names end in
  ``_total``);
* **gauge** — a value that can go up and down (queue depth, watts);
* **histogram** — fixed upper-bound buckets plus ``_sum``/``_count``,
  used for host-side batch latency.

Units and invariants
--------------------
Metric values carry their unit in the metric name following the
Prometheus base-unit convention (``_seconds``, ``_watts``); the one
deliberate exception is ``repro_power_mw_per_gbps``, which keeps the
paper's Fig. 8 display unit.  Counter increments must be
non-negative (enforced); label sets are fixed per family at
registration and a family's kind/labels cannot be re-registered
differently (enforced).

Overhead
--------
The module-level :data:`REGISTRY` starts **disabled**.  Instrumented
hot paths guard every record with one ``REGISTRY.enabled`` attribute
load, so the disabled cost is a single branch per *batch* (never per
packet).  Metric objects themselves always record when called
directly — the flag gates call sites, not storage.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "default_registry",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: default latency buckets, in seconds: 100 µs … 10 s, roughly
#: geometric — host-side batch serving times land mid-range
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ObservabilityError(f"counter increments must be >= 0, got {amount}")
        self._value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self._value -= amount


class Histogram:
    """Fixed-bucket histogram with sum and count.

    Buckets are *upper bounds* with Prometheus ``le`` (less-or-equal)
    semantics: an observation lands in the first bucket whose bound is
    >= the value; values above the last bound land only in the
    implicit ``+Inf`` bucket.  Bounds must be strictly increasing.
    """

    __slots__ = ("bounds", "_bucket_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ObservabilityError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        # one slot per finite bound plus the +Inf overflow slot
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._bucket_counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf overflow."""
        return tuple(self._bucket_counts)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Cumulative counts per bound plus +Inf (Prometheus ``le`` form)."""
        out = []
        running = 0
        for count in self._bucket_counts:
            running += count
            out.append(running)
        return tuple(out)


class MetricFamily:
    """One named metric with a fixed label set and typed children.

    Children are addressed by label *values* (one per registered label
    name, in order); a family registered with no labels has a single
    anonymous child reachable through the family's own ``inc`` /
    ``set`` / ``observe`` passthroughs.
    """

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ):
        if not _METRIC_NAME.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME.match(label):
                raise ObservabilityError(f"invalid label name {label!r} on {name!r}")
        if kind not in ("counter", "gauge", "histogram"):
            raise ObservabilityError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _new_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS_S)

    def labels(self, *values: object) -> Counter | Gauge | Histogram:
        """Child metric for one combination of label values (created lazily)."""
        if len(values) != len(self.label_names):
            raise ObservabilityError(
                f"{self.name}: expected {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def samples(self) -> Iterator[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        """All (label values, child) pairs, sorted by label values."""
        return iter(sorted(self._children.items()))

    def reset(self) -> None:
        """Drop all children (values reset to empty; family stays registered)."""
        with self._lock:
            self._children.clear()

    # -- passthroughs for label-less families ------------------------------

    def inc(self, amount: float = 1.0) -> None:
        """Counter/gauge passthrough for a label-less family."""
        child = self.labels()
        if isinstance(child, Histogram):
            raise ObservabilityError(f"{self.name}: histograms use observe()")
        child.inc(amount)

    def set(self, value: float) -> None:
        """Gauge passthrough for a label-less family."""
        child = self.labels()
        if not isinstance(child, Gauge):
            raise ObservabilityError(f"{self.name}: only gauges support set()")
        child.set(value)

    def observe(self, value: float) -> None:
        """Histogram passthrough for a label-less family."""
        child = self.labels()
        if not isinstance(child, Histogram):
            raise ObservabilityError(f"{self.name}: only histograms support observe()")
        child.observe(value)


class MetricsRegistry:
    """Get-or-create store of metric families with a global enable flag.

    Invariants: family names are unique; re-requesting a family with
    the same kind and labels returns the existing instance, while a
    conflicting re-registration raises
    :class:`~repro.errors.ObservabilityError`.  The ``enabled`` flag
    is the zero-overhead gate instrumented call sites check before
    recording anything.
    """

    def __init__(self, enabled: bool = False):
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()
        self.enabled = enabled

    # -- enablement ---------------------------------------------------------

    def enable(self) -> None:
        """Turn instrumented call sites on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn instrumented call sites off (the default)."""
        self.enabled = False

    @contextmanager
    def enabled_scope(self, value: bool = True) -> Iterator["MetricsRegistry"]:
        """Temporarily set the enable flag (restores on exit)."""
        previous = self.enabled
        self.enabled = value
        try:
            yield self
        finally:
            self.enabled = previous

    # -- registration -------------------------------------------------------

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(name, kind, help, labels, buckets)
                    self._families[name] = family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ObservabilityError(
                f"metric {name!r} already registered as {family.kind}"
                f"{family.label_names}, requested {kind}{tuple(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Get or create a counter family (names should end in ``_total``)."""
        return self._get_or_create(name, "counter", help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, "gauge", help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> MetricFamily:
        """Get or create a histogram family with fixed bucket bounds."""
        return self._get_or_create(
            name, "histogram", help, tuple(labels), tuple(float(b) for b in buckets)
        )

    # -- inspection ---------------------------------------------------------

    def collect(self) -> list[MetricFamily]:
        """All registered families, sorted by name (for exporters)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        """The named family, or None if never registered."""
        return self._families.get(name)

    def reset(self) -> None:
        """Clear every family's children; registrations are kept."""
        for family in self._families.values():
            family.reset()

    def clear(self) -> None:
        """Drop all families entirely (cached family handles go stale)."""
        with self._lock:
            self._families.clear()


#: the process-wide default registry — disabled until something
#: (the repro-metrics CLI, a test, a user) calls ``enable()``
REGISTRY = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented modules publish to."""
    return REGISTRY
