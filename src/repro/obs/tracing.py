"""Lightweight span-based tracing with JSONL export.

A *span* measures one named region of work (serving a batch, running
one experiment).  Spans nest: entering a span inside another makes it
a child (``parent_id`` points at the enclosing span; both share a
``trace_id`` rooted at the outermost span).  Nesting is tracked with
:mod:`contextvars`, so spans stay correct across threads and asyncio
tasks within one process; child *processes* (the experiment engine's
pool workers) do not inherit the parent's tracer — fan-out timing is
recorded from the parent side instead.

Units and invariants
--------------------
``start_unix_s`` is a wall-clock UNIX timestamp (``time.time()``);
``duration_s`` is measured with ``time.perf_counter()`` and is always
>= 0.  Span and trace ids are 16-hex-digit strings unique within the
process.  A span's interval always contains its children's intervals
(children exit before their parent by construction).

Overhead
--------
The module-level :data:`TRACER` starts **disabled**; ``span()`` on a
disabled tracer returns a shared no-op context manager, so the cost
is one attribute check per instrumented region.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import IO, Iterator

__all__ = ["Span", "Tracer", "TRACER", "default_tracer"]

_ids = itertools.count(1)
_ids_lock = threading.Lock()


def _next_id() -> str:
    with _ids_lock:
        return f"{next(_ids):016x}"


@dataclass
class Span:
    """One traced region of work.

    Attributes
    ----------
    name:
        Region label, dot-namespaced (``serve.batch``).
    trace_id:
        Id shared by every span under one root span.
    span_id:
        This span's unique id.
    parent_id:
        Enclosing span's id, or ``None`` for a root span.
    start_unix_s:
        Wall-clock start (UNIX seconds).
    duration_s:
        Monotonic-clock duration in seconds (>= 0); 0.0 while open.
    attributes:
        Free-form key/value annotations (JSON-serializable values).
    status:
        ``"ok"``, or ``"error"`` when the region raised.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_unix_s: float = 0.0
    duration_s: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    status: str = "ok"

    def set(self, key: str, value: object) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (the JSONL record layout)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_s": self.start_unix_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
        }


class _NullSpan:
    """No-op stand-in handed out by a disabled tracer."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard the attribute."""


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Context manager returned by ``span()`` when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Live span context manager: opens on enter, records on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_token", "_started")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._token = None
        self._started = 0.0

    def __enter__(self) -> Span:
        parent = self._tracer._current.get()
        self._span = Span(
            name=self._name,
            trace_id=parent.trace_id if parent is not None else _next_id(),
            span_id=_next_id(),
            parent_id=parent.span_id if parent is not None else None,
            attributes=dict(self._attributes),
            start_unix_s=time.time(),
        )
        self._started = time.perf_counter()
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        span = self._span
        assert span is not None  # __exit__ only runs after __enter__
        span.duration_s = time.perf_counter() - self._started
        if exc_type is not None:
            span.status = "error"
        if self._token is not None:
            self._tracer._current.reset(self._token)
        self._tracer._record(span)
        return None


class Tracer:
    """Factory and in-memory store for :class:`Span` records.

    Finished spans land in a bounded ring buffer (oldest dropped past
    ``max_spans``) and, when a sink file object is attached with
    :meth:`attach_sink`, are also written through as JSONL lines as
    they close.
    """

    def __init__(self, *, enabled: bool = False, max_spans: int = 10_000):
        self.enabled = enabled
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._current: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)
        self._sink: IO[str] | None = None
        self._lock = threading.Lock()

    # -- enablement ---------------------------------------------------------

    def enable(self) -> None:
        """Turn span recording on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn span recording off (the default)."""
        self.enabled = False

    # -- span API -----------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanContext | _NullSpanContext:
        """Context manager measuring one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, attributes)

    def current_span(self) -> Span | None:
        """The innermost open span in this context, if any."""
        return self._current.get()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._sink is not None:
                self._sink.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
                self._sink.flush()

    # -- export -------------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """Finished spans currently buffered, oldest first."""
        with self._lock:
            return tuple(self._spans)

    def drain(self) -> tuple[Span, ...]:
        """Return buffered spans and clear the buffer."""
        with self._lock:
            spans = tuple(self._spans)
            self._spans.clear()
        return spans

    def attach_sink(self, sink: IO[str] | None) -> None:
        """Stream future spans to ``sink`` as JSONL (None detaches)."""
        with self._lock:
            self._sink = sink

    def export_jsonl(self, path: str, *, append: bool = False) -> int:
        """Write all buffered spans to ``path`` as JSONL; returns the count."""
        spans = self.spans()
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        return len(spans)

    def iter_jsonl(self) -> Iterator[str]:
        """Yield each buffered span as one JSONL line."""
        for span in self.spans():
            yield json.dumps(span.as_dict(), sort_keys=True)


#: the process-wide default tracer — disabled until enabled explicitly
TRACER = Tracer(enabled=False)


def default_tracer() -> Tracer:
    """The process-wide default tracer instrumented modules publish to."""
    return TRACER
