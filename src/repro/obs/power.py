"""Power telemetry: the paper's power model evaluated on live traffic.

The paper's contribution is *measurement* — per-scheme total power
(Eqs. 2/4/6, Fig. 5) and mW/Gbps efficiency (Fig. 8).  This module
closes the loop between that offline model and the serving layer: a
:class:`PowerTelemetrySampler` pins one scenario point (scheme × K ×
grade × α, evaluated once through the shared
:func:`repro.experiments.common.evaluate_scenario` path) and then
converts each served batch's :class:`~repro.serve.service.ServeTrace`
into a watts / mW-per-Gbps estimate, attributed per virtual network.

The *activity* inputs come from the live trace (per-engine batch
shares, per-VN lookup counts); the *coefficients* come from the same
placed design and XPA-like reporter the figures use.  Consequence —
and the property the tests pin: on a static workload (uniform
per-VN load, full duty cycle) the sampled totals equal the fig5/fig8
engine rows exactly, because both sides make the identical
:class:`~repro.fpga.power_report.XPowerAnalyzer` calls.

Units and invariants
--------------------
All power figures are watts unless the name says otherwise
(``mw_per_gbps`` keeps the paper's Fig. 8 display unit); throughput is
Gbps at 40 B packets.  Invariants: ``sum(per_vn_w) == total_w`` up to
float rounding for every scheme; per-VN attribution charges NV
networks their whole device, VS/VM networks an equal share of the one
device's static power plus their dynamic share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.estimator import ExperimentalPower, ScenarioResult
from repro.core.metrics import mw_per_gbps
from repro.errors import ConfigurationError, ObservabilityError
from repro.fpga.bram import PAPER_WRITE_RATE
from repro.fpga.dvs import NOMINAL_POINT, NOMINAL_VOLTAGE, OperatingPoint
from repro.fpga.power_report import XPowerAnalyzer
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.obs.registry import MetricsRegistry, default_registry
from repro.virt.schemes import Scheme

if TYPE_CHECKING:  # avoid a runtime repro.serve <-> repro.obs cycle
    from repro.serve.service import ServeTrace

__all__ = ["PowerSample", "PowerTelemetrySampler"]


@dataclass(frozen=True)
class PowerSample:
    """One power-telemetry reading derived from one served batch.

    Attributes
    ----------
    scheme, k, grade:
        The scenario point the sampler was built for.
    frequency_mhz:
        Operating clock of the placed design (achieved fmax).
    duty_cycle:
        Offered-load fraction assumed for the reading (1 = line rate,
        0 = idle: static power only, zero per-VN throughput).
    n_packets:
        Lookups in the batch behind this reading.
    static_w, logic_w, signal_w, bram_w:
        Power components in watts (post-P&R reporter breakdown,
        summed over devices for NV).
    throughput_gbps:
        Aggregate lookup capacity of the scheme at 40 B packets.
    per_vn_w:
        Per-virtual-network attribution, watts (sums to ``total_w``).
    per_vn_gbps:
        Offered per-VN throughput share, Gbps
        (``capacity x duty x share``).
    voltage:
        Core voltage the reading was scaled to (DVS operating point;
        1.0 is the unscaled -2 baseline).
    """

    scheme: Scheme
    k: int
    grade: SpeedGrade
    frequency_mhz: float
    duty_cycle: float
    n_packets: int
    static_w: float
    logic_w: float
    signal_w: float
    bram_w: float
    throughput_gbps: float
    per_vn_w: tuple[float, ...]
    per_vn_gbps: tuple[float, ...]
    voltage: float = NOMINAL_VOLTAGE

    @property
    def dynamic_w(self) -> float:
        """Dynamic (logic + signal + BRAM) power, watts."""
        return self.logic_w + self.signal_w + self.bram_w

    @property
    def total_w(self) -> float:
        """Total power, watts — comparable to a Fig. 5 row."""
        return self.static_w + self.dynamic_w

    @property
    def mw_per_gbps(self) -> float:
        """Efficiency at aggregate capacity — comparable to a Fig. 8 row."""
        return mw_per_gbps(self.total_w, self.throughput_gbps)

    def per_vn_mw_per_gbps(self) -> tuple[float, ...]:
        """Per-VN efficiency; ``inf`` for a VN that served no traffic."""
        out = []
        for watts, gbps_share in zip(self.per_vn_w, self.per_vn_gbps):
            if gbps_share <= 0.0:
                out.append(float("inf"))
            else:
                out.append(mw_per_gbps(watts, gbps_share))
        return tuple(out)


class PowerTelemetrySampler:
    """Convert serve traces into per-VN power telemetry for one scenario.

    Parameters
    ----------
    scheme:
        Deployment scheme (must match the traces sampled later).
    k:
        Number of virtual networks.
    grade:
        Speed grade of the modeled device.
    alpha:
        Merging efficiency; required for VM with ``k > 1``.
    table:
        Synthetic-table parameters of the *modeled* scenario; defaults
        to the paper's reference table, which makes the sampler agree
        with the published fig5/fig8 grid.  (The tables actually
        served may differ — the live trace contributes only activity.)
    registry:
        Metrics registry :meth:`observe` publishes gauges into;
        defaults to the process-wide registry.

    The scenario is evaluated once at construction through the
    process-wide memoized path, so building a sampler for a grid point
    the experiments already visited is free.
    """

    def __init__(
        self,
        scheme: Scheme,
        k: int,
        *,
        grade: SpeedGrade = SpeedGrade.G2,
        alpha: float | None = None,
        table: SyntheticTableConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        # late import: repro.experiments registers every figure module
        # on import, which is heavy and would cycle back into obs
        from repro.experiments.common import evaluate_scenario, paper_table_config

        self.config = ScenarioConfig(
            scheme=scheme,
            k=k,
            grade=grade,
            alpha=alpha,
            table=table if table is not None else paper_table_config(),
        )
        self.scenario: ScenarioResult = evaluate_scenario(self.config)
        self._analyzer = XPowerAnalyzer()
        self._registry = registry
        self._batches = 0
        self._packets = 0
        self._weighted_total_w = 0.0
        self._weighted_vn_w = np.zeros(k)
        self._point = NOMINAL_POINT
        #: most recent reading folded in by :meth:`observe` (None until
        #: the first batch); the DVS governor reads it for the
        #: energy-per-lookup surface
        self.last_sample: PowerSample | None = None

    # -- DVS operating point ------------------------------------------------

    @property
    def operating_point(self) -> OperatingPoint:
        """The DVS operating point readings are currently scaled to."""
        return self._point

    def set_operating_point(self, point: OperatingPoint) -> None:
        """Rescale subsequent readings to a DVS operating point.

        The CMOS scaling laws of :mod:`repro.fpga.dvs` factor exactly
        out of the XPA-like reporter — static power is multiplicative
        in the grade's static watts, dynamic power is linear in both
        the per-MHz coefficients (x V²) and the clock (x fmax scale) —
        so scaling the evaluated components is *identical* to
        re-placing the design on :func:`repro.fpga.dvs.synthetic_grade`
        at the scaled clock, without re-running the evaluation.  At
        the nominal point every factor is 1 and readings are untouched.
        """
        self._point = point

    # -- sampling -----------------------------------------------------------

    def _vn_shares(self, trace: "ServeTrace") -> np.ndarray:
        """Per-VN lookup share of the batch (uniform when untracked)."""
        k = self.config.k
        if trace.vn_counts:
            if len(trace.vn_counts) != k:
                raise ObservabilityError(
                    f"trace tracks {len(trace.vn_counts)} VNs, sampler models {k}"
                )
            counts = np.asarray(trace.vn_counts, dtype=float)
            if counts.sum() > 0:
                return counts / counts.sum()
        return np.full(k, 1.0 / k)

    def sample(
        self,
        trace: "ServeTrace",
        *,
        duty_cycle: float = 1.0,
        write_rate: float | None = None,
    ) -> PowerSample:
        """Evaluate the power model at the batch's measured activity.

        ``duty_cycle`` is the offered-load fraction the batch
        represents (1 = saturated line rate, the figures' operating
        point; 0 = an idle device, which still burns static power but
        serves zero Gbps); the per-engine activity is the engine's
        share of the batch times this duty cycle — exactly the µᵢ·duty
        input of Eqs. 2/4/6 and of the XPA-like experimental path.
        Under degraded admission the engine shares already carry the
        shed fraction, so the reading tracks the degraded operating
        point.  ``write_rate`` overrides the stage-memory update rate
        (defaults to the paper's nominal
        :data:`~repro.fpga.bram.PAPER_WRITE_RATE`; a write storm
        passes its inflated rate here).
        """
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in [0, 1]")
        rate = PAPER_WRITE_RATE if write_rate is None else write_rate
        scheme, k = self.config.scheme, self.config.k
        if trace.scheme is not scheme:
            raise ObservabilityError(
                f"trace served scheme {trace.scheme}, sampler models {scheme}"
            )
        expected_engines = scheme.engines_required(k)
        if trace.n_engines != expected_engines:
            raise ObservabilityError(
                f"trace has {trace.n_engines} engines, scheme {scheme} "
                f"at K={k} needs {expected_engines}"
            )
        loads = np.asarray(trace.engine_loads(), dtype=float)
        placed = self.scenario.placed
        f = self.scenario.frequency_mhz
        # DVS scaling factors of the current operating point; each
        # component of the base-grade evaluation scales independently
        # (see set_operating_point), static by V³, dynamic by V²·fmax
        ss = self._point.static_scale
        ds = self._point.dynamic_scale * self._point.frequency_scale

        if scheme is Scheme.NV:
            # K identical devices: one report per device at its VN's load
            reports = [
                self._analyzer.report(
                    placed, f, np.array([load * duty_cycle]), write_rate=rate
                )
                for load in loads
            ]
            power = ExperimentalPower.from_reports(reports)
            per_vn = tuple(r.static_w * ss + r.dynamic_w * ds for r in reports)
            shares = loads
        elif scheme is Scheme.VS:
            report = self._analyzer.report(
                placed, f, loads * duty_cycle, write_rate=rate
            )
            power = ExperimentalPower.from_reports([report])
            per_vn = tuple(
                report.static_w * ss / k + engine.dynamic_w * ds
                for engine in report.engines
            )
            shares = loads
        else:
            # VM: the one engine's activity is its share of the offered
            # batch (1 nominally, less under degraded admission) times
            # the duty cycle; attribute dynamic power by VN share
            served = loads[0] if trace.n_packets > 0 else 1.0
            report = self._analyzer.report(
                placed, f, np.array([served * duty_cycle]), write_rate=rate
            )
            power = ExperimentalPower.from_reports([report])
            shares = self._vn_shares(trace)
            per_vn = tuple(
                report.static_w * ss / k + report.dynamic_w * ds * share
                for share in shares
            )

        capacity = self.scenario.throughput_gbps * self._point.frequency_scale
        return PowerSample(
            scheme=scheme,
            k=k,
            grade=self.config.grade,
            frequency_mhz=f * self._point.frequency_scale,
            duty_cycle=duty_cycle,
            n_packets=trace.n_packets,
            static_w=power.static_w * ss,
            logic_w=power.logic_w * ds,
            signal_w=power.signal_w * ds,
            bram_w=power.bram_w * ds,
            throughput_gbps=capacity,
            per_vn_w=per_vn,
            per_vn_gbps=tuple(capacity * duty_cycle * float(s) for s in shares),
            voltage=self._point.voltage,
        )

    # -- running telemetry --------------------------------------------------

    def observe(
        self,
        trace: "ServeTrace",
        *,
        duty_cycle: float = 1.0,
        write_rate: float | None = None,
    ) -> PowerSample:
        """Sample, fold into the running estimate, and publish gauges."""
        sample = self.sample(trace, duty_cycle=duty_cycle, write_rate=write_rate)
        self.last_sample = sample
        self._batches += 1
        if sample.n_packets > 0:
            self._packets += sample.n_packets
            self._weighted_total_w += sample.n_packets * sample.total_w
            self._weighted_vn_w += sample.n_packets * np.asarray(sample.per_vn_w)
        self.publish(sample)
        return sample

    @property
    def batches_observed(self) -> int:
        """Batches folded into the running estimate so far."""
        return self._batches

    @property
    def packets_observed(self) -> int:
        """Lookups folded into the running estimate so far."""
        return self._packets

    @property
    def running_total_w(self) -> float:
        """Packet-weighted mean total power over all observed batches."""
        if self._packets == 0:
            return 0.0
        return self._weighted_total_w / self._packets

    @property
    def running_per_vn_w(self) -> tuple[float, ...]:
        """Packet-weighted mean per-VN power over all observed batches."""
        if self._packets == 0:
            return tuple(0.0 for _ in range(self.config.k))
        return tuple(self._weighted_vn_w / self._packets)

    @property
    def running_mw_per_gbps(self) -> float:
        """Efficiency of the running power estimate at scheme capacity."""
        if self._packets == 0:
            return 0.0
        return mw_per_gbps(self.running_total_w, self.scenario.throughput_gbps)

    # -- publication --------------------------------------------------------

    def publish(self, sample: PowerSample) -> None:
        """Set the power gauges in the registry (no-op when disabled)."""
        registry = self._registry if self._registry is not None else default_registry()
        if not registry.enabled:
            return
        scheme, grade = sample.scheme.name, sample.grade.name
        registry.gauge(
            "repro_power_total_watts",
            "Modeled total power of the scenario at live activity",
            labels=("scheme", "grade"),
        ).labels(scheme, grade).set(sample.total_w)
        component_gauge = registry.gauge(
            "repro_power_component_watts",
            "Power by component (static/logic/signal/bram) at live activity",
            labels=("scheme", "grade", "component"),
        )
        for component, watts in (
            ("static", sample.static_w),
            ("logic", sample.logic_w),
            ("signal", sample.signal_w),
            ("bram", sample.bram_w),
        ):
            component_gauge.labels(scheme, grade, component).set(watts)
        vn_gauge = registry.gauge(
            "repro_power_vn_watts",
            "Per-virtual-network power attribution at live activity",
            labels=("scheme", "grade", "vn"),
        )
        for vn, watts in enumerate(sample.per_vn_w):
            vn_gauge.labels(scheme, grade, vn).set(watts)
        registry.gauge(
            "repro_power_mw_per_gbps",
            "Fig. 8 efficiency metric at live activity (mW per Gbps)",
            labels=("scheme", "grade"),
        ).labels(scheme, grade).set(sample.mw_per_gbps)
        registry.gauge(
            "repro_power_throughput_gbps",
            "Aggregate lookup capacity of the modeled scheme",
            labels=("scheme", "grade"),
        ).labels(scheme, grade).set(sample.throughput_gbps)
