"""Observability layer: metrics, tracing, and power telemetry.

Three runtime surfaces over the serving and experiment stack:

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket
  histograms behind one process-wide enable flag (zero overhead when
  disabled);
* :mod:`repro.obs.tracing` — span-based tracing with parent/child
  nesting and JSONL export;
* :mod:`repro.obs.power` — the paper's power model (Eqs. 2/4/6,
  Figs. 5/8) evaluated against live per-stage activity, as per-VN
  watts and mW/Gbps telemetry.

Exporters for the Prometheus text format and JSONL live in
:mod:`repro.obs.export`; the ``repro-metrics`` CLI
(:mod:`repro.tools.metrics_cli`) snapshots, tails and demos all of
it.  The full metric/span catalog is documented in
``docs/OBSERVABILITY.md``.

Everything starts **disabled**: call :func:`enable` (or use the CLI)
to turn the default registry and tracer on.  :mod:`repro.obs.power`
is imported lazily via module ``__getattr__`` so that hot-path
modules (the tries, the serving layer) can import the light registry
and tracing modules without dragging in the experiment stack.
"""

from __future__ import annotations

from repro.obs.export import parse_prometheus_text, render_metrics_jsonl, render_prometheus
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
)
from repro.obs.snapshot import (
    FamilySnapshot,
    RegistrySnapshot,
    SampleSnapshot,
    merge_snapshots,
    restore_registry,
    snapshot_registry,
)
from repro.obs.tracing import TRACER, Span, Tracer, default_tracer

# the two power names resolve lazily via __getattr__ (PEP 562)
__all__ = [  # repro-lint: disable=IMP002 (lazy PEP 562 re-exports)
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "default_registry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Span",
    "Tracer",
    "TRACER",
    "default_tracer",
    "render_prometheus",
    "render_metrics_jsonl",
    "parse_prometheus_text",
    "SampleSnapshot",
    "FamilySnapshot",
    "RegistrySnapshot",
    "snapshot_registry",
    "restore_registry",
    "merge_snapshots",
    "PowerSample",
    "PowerTelemetrySampler",
    "enable",
    "disable",
    "enabled",
]

_LAZY_POWER = ("PowerSample", "PowerTelemetrySampler")


def __getattr__(name: str) -> object:
    # PEP 562: defer the power module (it pulls in the experiment
    # stack) until someone actually asks for it
    if name in _LAZY_POWER:
        from repro.obs import power

        return getattr(power, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def enable() -> None:
    """Enable the default metrics registry and tracer."""
    REGISTRY.enable()
    TRACER.enable()


def disable() -> None:
    """Disable the default metrics registry and tracer."""
    REGISTRY.disable()
    TRACER.disable()


def enabled() -> bool:
    """True when either default surface (metrics or tracing) is on."""
    return REGISTRY.enabled or TRACER.enabled
