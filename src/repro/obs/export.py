"""Metric exporters: Prometheus text exposition and JSONL.

Two wire formats for one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers followed by one
  sample line per child, histograms expanded into cumulative
  ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
* :func:`render_metrics_jsonl` — one JSON object per sample, for the
  span-style JSONL pipeline (``repro-metrics snapshot --format
  jsonl`` and the ``tail`` subcommand).

:func:`parse_prometheus_text` is the matching minimal parser; the
integration tests round-trip every exposition through it, so the
rendered output is guaranteed machine-readable.

Invariants: float values are rendered with ``repr`` (shortest
round-trip — re-parsing restores the exact double); sample names
always extend their family name; histogram bucket counts are
cumulative and end with the ``+Inf`` bucket equal to ``_count``.
"""

from __future__ import annotations

import json
import math
import re

from repro.errors import ObservabilityError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_metrics_jsonl",
    "parse_prometheus_text",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in ``registry`` as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.samples():
            labels = _labels_text(family.label_names, values)
            if isinstance(child, (Counter, Gauge)):
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
            elif isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [*child.bounds, math.inf]
                for bound, count in zip(bounds, cumulative):
                    le = _labels_text(
                        family.label_names, values, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{family.name}_bucket{le} {count}")
                lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics_jsonl(registry: MetricsRegistry) -> str:
    """Render every sample in ``registry`` as one JSON object per line.

    Record layout: ``{"metric", "kind", "labels", ...}`` with
    ``value`` for counters/gauges and ``sum``/``count``/``buckets``
    (bound → cumulative count) for histograms.
    """
    lines: list[str] = []
    for family in registry.collect():
        for values, child in family.samples():
            record: dict[str, object] = {
                "metric": family.name,
                "kind": family.kind,
                "labels": dict(zip(family.label_names, values)),
            }
            if isinstance(child, (Counter, Gauge)):
                record["value"] = child.value
            elif isinstance(child, Histogram):
                record["sum"] = child.sum
                record["count"] = child.count
                record["buckets"] = {
                    _format_value(bound): count
                    for bound, count in zip(
                        [*child.bounds, math.inf], child.cumulative_counts()
                    )
                }
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus_text(
    text: str,
) -> dict[str, dict[str, object]]:
    """Parse exposition text back into families (strict; raises on errors).

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Every sample line
    must parse, carry a numeric value, and extend a family announced
    by a preceding ``# TYPE`` line — the validation the integration
    tests rely on.
    """
    families: dict[str, dict[str, object]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ObservabilityError(f"line {lineno}: malformed HELP line: {raw!r}")
            name = parts[2]
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _KNOWN_TYPES:
                raise ObservabilityError(f"line {lineno}: malformed TYPE line: {raw!r}")
            name = parts[2]
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ObservabilityError(f"line {lineno}: unparseable sample: {raw!r}")
        sample_name = match.group("name")
        owner = None
        for family_name in families:
            if sample_name == family_name or (
                sample_name.startswith(family_name + "_")
                and sample_name[len(family_name) + 1 :] in ("bucket", "sum", "count")
            ):
                owner = family_name
                break
        if owner is None:
            raise ObservabilityError(
                f"line {lineno}: sample {sample_name!r} has no preceding TYPE line"
            )
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        try:
            value = _parse_value(match.group("value"))
        except ValueError as error:
            raise ObservabilityError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            ) from error
        samples = families[owner]["samples"]
        assert isinstance(samples, list)
        samples.append((sample_name, labels, value))
    return families
