"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError``, ``AttributeError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ResourceExhaustedError",
    "CapacityError",
    "PrefixError",
    "MrtError",
    "TrieError",
    "MergeError",
    "PlacementError",
    "TimingError",
    "CalibrationError",
    "ExperimentError",
    "ObservabilityError",
    "FaultError",
    "MalformedBatchError",
    "TransientEngineError",
    "ShardError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario or component configuration is invalid or inconsistent."""


class ResourceExhaustedError(ReproError):
    """A design does not fit on the target FPGA device.

    Carries the offending resource kind and the requested/available
    amounts so callers (e.g. the scalability sweep in the analysis
    package) can report *which* resource gated the design.
    """

    def __init__(self, resource: str, requested: float, available: float):
        self.resource = resource
        self.requested = requested
        self.available = available
        super().__init__(
            f"device resource exhausted: {resource} "
            f"(requested {requested:g}, available {available:g})"
        )


class CapacityError(ReproError):
    """A lookup engine cannot sustain the required aggregate throughput."""


class PrefixError(ReproError):
    """Malformed or out-of-range IPv4 prefix."""


class MrtError(ReproError):
    """Malformed MRT/TABLE_DUMP2 input (binary record or bgpdump line).

    Carries enough position context (line number or byte offset) in
    the message to locate the offending record in a multi-hundred-MB
    RIB dump.
    """


class TrieError(ReproError):
    """Invalid trie construction or traversal state."""


class MergeError(ReproError):
    """Virtual routing tables could not be merged consistently."""


class PlacementError(ReproError):
    """The place-and-route simulator could not place a design."""


class TimingError(ReproError):
    """No feasible operating frequency for a placed design."""


class CalibrationError(ReproError):
    """A calibration search (e.g. target merging efficiency) failed."""


class ExperimentError(ReproError):
    """An experiment was asked for an unknown id or invalid parameters."""


class ObservabilityError(ReproError):
    """Invalid metric, span or telemetry registration or usage."""


class FaultError(ReproError):
    """Base class for the fault-injection and degradation layer."""


class MalformedBatchError(FaultError):
    """A serve batch was rejected by strict input validation.

    Carries the rejection ``kind`` — one of ``shape``, ``truncated``,
    ``dtype``, ``non_finite``, ``address_range``, ``vnid_range`` — so
    the serving layer can attribute the rejection in its error-budget
    counter (``repro_serve_errors_total{kind}``) and callers can
    dispatch on the failure mode without parsing messages.
    """

    def __init__(self, kind: str, message: str):
        self.kind = kind
        super().__init__(f"malformed batch ({kind}): {message}")


class TransientEngineError(FaultError):
    """An engine walk failed transiently (injected or simulated).

    The serving layer's degradation policy retries these with backoff;
    only after the retry budget is exhausted does the engine's share of
    the batch get shed.
    """

    def __init__(self, engine: int, attempt: int):
        self.engine = engine
        self.attempt = attempt
        super().__init__(f"engine {engine} walk failed transiently (attempt {attempt})")


class ShardError(ReproError):
    """A shard worker of the sharded serving tier failed.

    Raised by the frontend when a worker replies with an error (the
    worker's formatted traceback is the message) or its process/pipe
    dies mid-request.  Admission shedding and fault degradation are
    *not* shard errors — they answer normally with
    :data:`~repro.faults.SHED_RESULT`.
    """
