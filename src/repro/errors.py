"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError``, ``AttributeError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ResourceExhaustedError",
    "CapacityError",
    "PrefixError",
    "TrieError",
    "MergeError",
    "PlacementError",
    "TimingError",
    "CalibrationError",
    "ExperimentError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario or component configuration is invalid or inconsistent."""


class ResourceExhaustedError(ReproError):
    """A design does not fit on the target FPGA device.

    Carries the offending resource kind and the requested/available
    amounts so callers (e.g. the scalability sweep in the analysis
    package) can report *which* resource gated the design.
    """

    def __init__(self, resource: str, requested: float, available: float):
        self.resource = resource
        self.requested = requested
        self.available = available
        super().__init__(
            f"device resource exhausted: {resource} "
            f"(requested {requested:g}, available {available:g})"
        )


class CapacityError(ReproError):
    """A lookup engine cannot sustain the required aggregate throughput."""


class PrefixError(ReproError):
    """Malformed or out-of-range IPv4 prefix."""


class TrieError(ReproError):
    """Invalid trie construction or traversal state."""


class MergeError(ReproError):
    """Virtual routing tables could not be merged consistently."""


class PlacementError(ReproError):
    """The place-and-route simulator could not place a design."""


class TimingError(ReproError):
    """No feasible operating frequency for a placed design."""


class CalibrationError(ReproError):
    """A calibration search (e.g. target merging efficiency) failed."""


class ExperimentError(ReproError):
    """An experiment was asked for an unknown id or invalid parameters."""


class ObservabilityError(ReproError):
    """Invalid metric, span or telemetry registration or usage."""
