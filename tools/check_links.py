#!/usr/bin/env python
"""Validate relative links in the repository's markdown docs.

Scans the markdown files and directories given on the command line for
inline links and images (``[text](target)``), resolves every *relative*
target against the linking file's directory, and fails when the target
file does not exist or a ``#fragment`` does not match any heading
anchor in the target document (GitHub's anchor convention: lowercase,
spaces to dashes, punctuation stripped).

External targets (``http://``, ``https://``, ``mailto:``) and bare
anchors into third-party sites are not fetched — this is an offline,
repository-consistency check, run by ``make docs-check`` and the CI
``docs`` job.

Exit status: 0 when every link resolves, 1 otherwise (one diagnostic
line per broken link), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# inline markdown link/image: [text](target) — tolerates one level of
# nested brackets in the text (e.g. badge images)
_LINK = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Remove fenced code blocks and inline code spans before scanning."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def github_anchor(heading: str) -> str:
    """GitHub's anchor slug for one heading line."""
    # drop markdown emphasis/code markers, then lowercase, strip
    # punctuation, and turn spaces into dashes
    text = re.sub(r"[*_`]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """All heading anchors defined in ``path`` (deduplicated GitHub-style)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match is None:
            continue
        slug = github_anchor(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path, root: Path) -> list[str]:
    """All broken-link diagnostics for one markdown file."""
    problems: list[str] = []
    text = _strip_code(path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("<"):
            continue
        rel = path.relative_to(root)
        if target.startswith("#"):
            if github_anchor(target[1:]) not in heading_anchors(path):
                problems.append(f"{rel}: broken anchor {target!r}")
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{rel}: broken link {target!r} -> {resolved}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                problems.append(
                    f"{rel}: broken anchor {target!r} "
                    f"(no heading #{fragment} in {resolved.name})"
                )
    return problems


def collect(paths: list[str], root: Path) -> list[Path]:
    """Expand CLI arguments into the markdown files to check."""
    files: list[Path] = []
    for arg in paths:
        path = (root / arg).resolve() if not Path(arg).is_absolute() else Path(arg)
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(arg)
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="+", help="markdown files or directories of *.md to check"
    )
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root that relative PATH arguments resolve against",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    try:
        files = collect(args.paths, root)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc}", file=sys.stderr)
        return 2
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} file(s): "
        + ("OK" if not problems else f"{len(problems)} broken link(s)")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
