#!/usr/bin/env python
"""Launcher for the lookup throughput gate (see :mod:`repro.serve.perf`).

Run from the repository root::

    python tools/bench_gate.py [--baseline BENCH_lookup.json] [--tolerance 0.10]

Re-runs the three ``serve_*`` benchmark cases at the committed
baseline's exact configuration (same tables, batch and seed) and exits
non-zero when any scheme's ops/s drops more than the tolerance below
the committed number — the CI step that keeps the throughput
trajectory monotone.  The gate logic lives in ``src/repro/serve/perf.py``
so it is covered by the test suite, repro-lint, ruff and mypy; this
file only makes it runnable without installing the package.
"""

import os
import sys

if __name__ == "__main__":
    try:
        from repro.serve.perf import gate_main
    except ImportError:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        sys.path.insert(0, os.path.join(repo_root, "src"))
        from repro.serve.perf import gate_main
    raise SystemExit(gate_main())
