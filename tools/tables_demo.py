#!/usr/bin/env python
"""Print the real-RIB α/BRAM/power comparison (``make tables-demo``).

Parses the committed RIS-shaped fixture through the MRT ingest path,
runs the ``real_rib`` experiment on both table slices, and prints the
separate-vs-merged comparison the paper makes — measured merging
efficiency α, 18 Kb BRAM blocks, fmax and total power — plus the
churn/agreement and IPv6 headlines.  See docs/TABLES.md for the full
pipeline this demonstrates.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.engine import run_experiment  # noqa: E402
from repro.experiments.real_rib import FIXTURE_PATH, FIXTURE_SHA, fixture_dataset  # noqa: E402

_ROW_LABELS = ("separate engines (VS)", "merged engine (VM)")


def main() -> int:
    dataset = fixture_dataset()
    print(f"fixture: {FIXTURE_PATH.name} (sha256 {FIXTURE_SHA})")
    print(
        f"  {dataset.n_entries} entries -> {len(dataset.v4)} IPv4 + "
        f"{len(dataset.v6)} IPv6 prefixes, {len(dataset.next_hops)} next hops, "
        f"{dataset.n_duplicates} multi-peer duplicates collapsed"
    )

    for result in run_experiment("real_rib"):
        print(f"\n{result.title}")
        header = f"  {'organisation':<24}{'alpha':>7}{'BRAM18':>8}{'fmax':>9}{'power':>9}{'mW/Gbps':>10}"
        print(header)
        for row, label in enumerate(_ROW_LABELS):
            alpha = result.get("alpha")[row]
            print(
                f"  {label:<24}"
                f"{alpha:>7.3f}"
                f"{int(result.get('bram_blocks18')[row]):>8d}"
                f"{result.get('fmax_MHz')[row]:>6.0f}MHz"
                f"{result.get('total_W')[row]:>8.2f}W"
                f"{result.get('mW_per_Gbps')[row]:>10.1f}"
            )

    for experiment_id in ("real_rib_churn", "real_rib_v6"):
        (result,) = run_experiment(experiment_id)
        print(f"\n{result.title}")
        for note in result.notes:
            print(f"  {note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
