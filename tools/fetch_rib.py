#!/usr/bin/env python
"""Fetch a RIPE RIS RIB snapshot — or regenerate the offline fixture.

Two subcommands:

``fetch``
    Download a ``bview`` MRT dump from a RIS collector
    (``https://data.ris.ripe.net/<collector>/latest-bview.gz``, or a
    dated ``YYYY.MM/bview.YYYYMMDD.HHMM.gz`` path) and optionally
    reduce it to a downsampled ``bgpdump -m``-style text snapshot via
    :mod:`repro.iplookup.mrt`.  Needs network access — CI never runs
    this; the committed fixture is the hermetic input there.

``synthesize``
    Regenerate the committed fixture deterministically, offline.  The
    fixture mirrors the *statistical shape* of a real rrc00 ``bview``
    (prefix-length histogram, multi-peer duplicate announcements,
    default routes, AS-path prepending and AS-sets, /32 blackhole
    more-specifics) without containing actual announced routes — the
    build environment has no network access, so a true snapshot cannot
    be committed from here.  Provenance: docs/TABLES.md.

The fixture files written by ``synthesize`` (and consumed by the
``real_rib*`` experiments) are::

    examples/data/ris_sample.bgpdump.txt   text fixture (v4 + v6)
    examples/data/ris_sample_head.mrt.gz   binary MRT head (same head
                                           entries, TABLE_DUMP_V2)
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.iplookup.mrt import (  # noqa: E402
    RibEntry,
    dataset_from_entries,
    render_bgpdump_line,
    render_mrt_bytes,
)

DEFAULT_TEXT = os.path.join("examples", "data", "ris_sample.bgpdump.txt")
DEFAULT_BINARY = os.path.join("examples", "data", "ris_sample_head.mrt.gz")
DEFAULT_SEED = 20260808
SNAPSHOT_TS = 1765756800  # 2025-12-15 00:00:00 UTC, the mirrored bview slot

# share of the global v4 table at each prefix length, shaped after the
# published rrc00/potaroo distribution (normalized below); /24 dominates
_V4_LENGTH_SHARE = {
    8: 0.004, 9: 0.002, 10: 0.003, 11: 0.006, 12: 0.012, 13: 0.014,
    14: 0.020, 15: 0.022, 16: 0.055, 17: 0.030, 18: 0.048, 19: 0.065,
    20: 0.075, 21: 0.075, 22: 0.115, 23: 0.095, 24: 0.545,
    25: 0.002, 26: 0.001, 27: 0.001, 28: 0.001, 29: 0.001, 30: 0.001,
    32: 0.004,  # blackhole / host-route more-specifics
}
_V6_LENGTH_SHARE = {
    29: 0.04, 32: 0.25, 33: 0.02, 36: 0.05, 40: 0.07, 44: 0.05,
    46: 0.03, 47: 0.02, 48: 0.40, 56: 0.03, 64: 0.04, 128: 0.01,
}

# unicast first octets a DFZ prefix can start with (no reserved space)
_V4_FIRST_OCTETS = [
    o for o in range(1, 224) if o not in (0, 10, 100, 127, 169, 172, 192, 198)
]
# RIR /12-ish v6 super-blocks, as (top-16-bit value) choices
_V6_BLOCKS = [0x2001, 0x2400, 0x2600, 0x2800, 0x2A00, 0x2C00, 0x2408, 0x2A02]

# (peer_ip, peer_as) rows of the synthetic collector, v4 then v6 peers
_PEERS_V4 = [("80.77.16.114", 34549), ("12.0.1.63", 7018), ("198.32.160.61", 3257)]
_PEERS_V6 = [("2001:7f8:4::86f5:1", 34549), ("2001:504:1::a500:7018:1", 7018)]

_TRANSIT_AS = [3356, 1299, 174, 2914, 6939, 6461, 3257, 6762, 1273, 9002]


def _as_path(rng: np.random.Generator, peer_as: int, origin_as: int) -> str:
    """A plausible AS path: peer, 1-3 transits, maybe prepended origin."""
    hops = [peer_as]
    for _ in range(int(rng.integers(1, 4))):
        candidate = _TRANSIT_AS[int(rng.integers(0, len(_TRANSIT_AS)))]
        if candidate != hops[-1]:
            hops.append(candidate)
    prepend = int(rng.integers(1, 4)) if rng.random() < 0.08 else 1
    hops.extend([origin_as] * prepend)
    if rng.random() < 0.005:  # the odd AS-set from aggregation
        partner = _TRANSIT_AS[int(rng.integers(0, len(_TRANSIT_AS)))]
        hops[-1:] = []
        return " ".join(map(str, hops)) + " {" + f"{origin_as},{partner}" + "}"
    return " ".join(map(str, hops))


def _sample_lengths(rng: np.random.Generator, share: dict, n: int) -> np.ndarray:
    lengths = np.array(sorted(share), dtype=np.int64)
    weights = np.array([share[int(l)] for l in lengths], dtype=float)
    return rng.choice(lengths, size=n, p=weights / weights.sum())


def _v4_prefixes(rng: np.random.Generator, n: int) -> list[str]:
    prefixes: set[str] = set()
    lengths = _sample_lengths(rng, _V4_LENGTH_SHARE, 4 * n)
    octets = rng.choice(np.array(_V4_FIRST_OCTETS), size=4 * n)
    for length, first in zip(lengths, octets):
        length = int(length)
        value = (int(first) << 24) | int(rng.integers(0, 1 << 24))
        value &= ((1 << 32) - 1) << (32 - length) if length else 0
        a, b, c, d = (value >> 24) & 255, (value >> 16) & 255, (value >> 8) & 255, value & 255
        prefixes.add(f"{a}.{b}.{c}.{d}/{length}")
        if len(prefixes) == n:
            break
    return sorted(prefixes)


def _v6_prefixes(rng: np.random.Generator, n: int) -> list[str]:
    from repro.iplookup.prefix6 import Prefix6

    prefixes: set[str] = set()
    lengths = _sample_lengths(rng, _V6_LENGTH_SHARE, 4 * n)
    blocks = rng.choice(np.array(_V6_BLOCKS), size=4 * n)
    for length, block in zip(lengths, blocks):
        length = int(length)
        value = (int(block) << 112) | int(rng.integers(0, 1 << 62)) << 50
        prefixes.add(str(Prefix6.normalized(value, length)))
        if len(prefixes) == n:
            break
    return sorted(prefixes)


def synthesize_entries(
    seed: int = DEFAULT_SEED, n_v4: int = 3000, n_v6: int = 700
) -> list[RibEntry]:
    """The deterministic entry stream behind the committed fixture."""
    rng = np.random.default_rng(seed)
    entries: list[RibEntry] = []

    def announce(peers, prefix: str, *, duplicate_p: float) -> None:
        origin_as = int(rng.integers(1000, 400000))
        first = int(rng.integers(0, len(peers)))
        chosen = [peers[first]]
        # multi-peer duplicate announcements of the same prefix — the
        # dedup path the dataset reduction must collapse
        chosen.extend(p for p in peers if p not in chosen and rng.random() < duplicate_p)
        for peer_ip, peer_as in chosen:
            entries.append(
                RibEntry(
                    timestamp=SNAPSHOT_TS,
                    peer_ip=peer_ip,
                    peer_as=peer_as,
                    prefix=prefix,
                    as_path=_as_path(rng, peer_as, origin_as),
                    next_hop=peer_ip,
                )
            )

    announce(_PEERS_V4, "0.0.0.0/0", duplicate_p=0.0)
    for prefix in _v4_prefixes(rng, n_v4 - 1):
        announce(_PEERS_V4, prefix, duplicate_p=0.25)
    announce(_PEERS_V6, "::/0", duplicate_p=0.0)
    for prefix in _v6_prefixes(rng, n_v6 - 1):
        announce(_PEERS_V6, prefix, duplicate_p=0.25)
    return entries


def cmd_synthesize(args: argparse.Namespace) -> int:
    entries = synthesize_entries(args.seed, args.v4, args.v6)
    header = (
        f"# synthetic RIS-shaped RIB fixture: seed {args.seed}, "
        f"{args.v4} v4 + {args.v6} v6 prefixes\n"
        "# regenerate: python tools/fetch_rib.py synthesize\n"
        "# provenance and license note: docs/TABLES.md\n"
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(header)
        for entry in entries:
            handle.write(render_bgpdump_line(entry) + "\n")
    with open(args.binary_head, "wb") as handle:
        handle.write(render_mrt_bytes(entries[: args.head], compress=True))
    dataset = dataset_from_entries(entries, name="ris_sample")
    print(
        f"wrote {args.output}: {len(entries)} entries -> "
        f"{len(dataset.v4)} v4 + {len(dataset.v6)} v6 unique prefixes, "
        f"{dataset.n_duplicates} multi-peer duplicates, "
        f"{len(dataset.next_hops)} next hops"
    )
    print(f"wrote {args.binary_head}: first {args.head} entries as binary MRT")
    return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    import urllib.request

    url = f"https://data.ris.ripe.net/{args.collector}/{args.path}"
    print(f"fetching {url} ...")
    request = urllib.request.Request(url, headers={"User-Agent": "repro-fetch-rib"})
    with urllib.request.urlopen(request, timeout=args.timeout) as response:
        data = response.read()
    with open(args.output, "wb") as handle:
        handle.write(data)
    print(f"wrote {args.output}: {len(data)} bytes")
    if args.sample:
        from repro.iplookup.mrt import downsample, load_dataset

        dataset = load_dataset(args.output, name=args.collector, strict=False)
        table = downsample(dataset.v4, args.sample, seed=args.seed)
        sample_path = args.output + ".sample.txt"
        table.to_file(sample_path)
        print(f"wrote {sample_path}: {len(table)} of {len(dataset.v4)} v4 prefixes")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fetch_rib", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fetch = sub.add_parser("fetch", help="download a bview dump (needs network)")
    fetch.add_argument("--collector", default="rrc00", help="RIS collector id")
    fetch.add_argument(
        "--path",
        default="latest-bview.gz",
        help="path under the collector, e.g. 2024.12/bview.20241215.0000.gz",
    )
    fetch.add_argument("-o", "--output", default="bview.gz")
    fetch.add_argument("--timeout", type=float, default=120.0)
    fetch.add_argument(
        "--sample",
        type=int,
        default=0,
        metavar="N",
        help="also write an N-prefix downsampled text snapshot",
    )
    fetch.add_argument("--seed", type=int, default=DEFAULT_SEED)
    fetch.set_defaults(func=cmd_fetch)

    synth = sub.add_parser(
        "synthesize", help="regenerate the committed offline fixture"
    )
    synth.add_argument("-o", "--output", default=DEFAULT_TEXT)
    synth.add_argument("--binary-head", default=DEFAULT_BINARY)
    synth.add_argument("--seed", type=int, default=DEFAULT_SEED)
    synth.add_argument("--v4", type=int, default=3000, help="unique v4 prefixes")
    synth.add_argument("--v6", type=int, default=700, help="unique v6 prefixes")
    synth.add_argument(
        "--head", type=int, default=200, help="entries in the binary MRT head fixture"
    )
    synth.set_defaults(func=cmd_synthesize)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
