# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test lint lint-drift lint-baseline bench bench-smoke bench-gate bench-figures figures experiments experiments-md examples obs-demo faults-smoke serve-smoke governor-demo tables-demo docs-check clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# every tree the gate covers (keep in sync with CI and
# tests/integration/test_lint_clean.py)
LINT_TREES = src/repro examples tools tests benchmarks
LINT_CACHE = out/.lintcache/project.json

# repro-lint is self-contained (stdlib only); ruff/mypy run when installed
lint:
	$(PYTHON) -m repro.tools.repro_lint --statistics \
		--project-cache $(LINT_CACHE) $(LINT_TREES)
	@command -v ruff >/dev/null 2>&1 && ruff check src/repro tests examples || echo "ruff not installed, skipped"
	@command -v mypy >/dev/null 2>&1 && mypy || echo "mypy not installed, skipped"

# CI drift gate: fail only on findings not in lint-baseline.json
lint-drift:
	$(PYTHON) -m repro.tools.repro_lint --format github \
		--baseline lint-baseline.json \
		--project-cache $(LINT_CACHE) $(LINT_TREES)

# accept the current finding set as the new baseline
lint-baseline:
	$(PYTHON) -m repro.tools.repro_lint --write-baseline lint-baseline.json \
		--project-cache $(LINT_CACHE) $(LINT_TREES)

# lookup perf harness: writes BENCH_lookup.json at the repo root
bench:
	$(PYTHON) benchmarks/perf/bench_lookup.py

# reduced preset used by the bench-smoke CI job
bench-smoke:
	$(PYTHON) benchmarks/perf/bench_lookup.py --smoke

# throughput regression gate: re-run the serve benches at the
# committed BENCH_lookup.json's config, fail on a >10% ops/s drop
bench-gate:
	$(PYTHON) tools/bench_gate.py

# pytest-benchmark figure reproductions (slow)
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# regenerate every registered experiment through the engine: parallel,
# served from the content-addressed cache under out/.cache, exporting
# CSV/SVG artifacts and the provenance manifest into out/
figures:
	$(PYTHON) -m repro.experiments.runner --jobs 4 \
		--csv out/figures --svg out/figures --json out/figures \
		--manifest out/run_manifest.json > /dev/null

experiments:
	$(PYTHON) -m repro.experiments.runner

experiments-md:
	$(PYTHON) -m repro.experiments.report

examples:
	@set -e; for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null; done; echo all examples OK

# live power/throughput telemetry over the paper's K = 1..15 sweep
obs-demo:
	$(PYTHON) -m repro.tools.metrics_cli demo --kmax 15

# fault-injection smoke: headline stall agreement + a seeded chaos run
faults-smoke:
	$(PYTHON) -m pytest -q tests/integration/test_faults_smoke.py
	$(PYTHON) -m repro.tools.metrics_cli faults --k 4 --batches 8 --n-faults 5 --power

# sharded-tier smoke: 2 shard worker processes, ~50k lookups through
# the async front end, clean shutdown, merged-metrics consistency
serve-smoke:
	$(PYTHON) -m repro.tools.serve_cli --shards 2 smoke --lookups 50000

# closed-loop DVS governor demo: governed load ramp with a fault
# window, energy per lookup against both static grades
governor-demo:
	$(PYTHON) -m repro.tools.metrics_cli governor
	$(PYTHON) -m repro.experiments.runner --tag governor

# real-RIB pipeline demo: parse the committed fixture, print the
# measured alpha / BRAM / power comparison (see docs/TABLES.md)
tables-demo:
	$(PYTHON) tools/tables_demo.py

# validate relative links in the markdown docs
docs-check:
	$(PYTHON) tools/check_links.py README.md EXPERIMENTS.md docs

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis out
	find . -name __pycache__ -type d -exec rm -rf {} +
