# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench experiments experiments-md examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

experiments-md:
	$(PYTHON) -m repro.experiments.report

examples:
	@set -e; for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null; done; echo all examples OK

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis out
	find . -name __pycache__ -type d -exec rm -rf {} +
