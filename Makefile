# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test lint bench experiments experiments-md examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# repro-lint is self-contained (stdlib only); ruff/mypy run when installed
lint:
	$(PYTHON) -m repro.tools.repro_lint --statistics src/repro examples
	@command -v ruff >/dev/null 2>&1 && ruff check src/repro tests examples || echo "ruff not installed, skipped"
	@command -v mypy >/dev/null 2>&1 && mypy || echo "mypy not installed, skipped"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

experiments-md:
	$(PYTHON) -m repro.experiments.report

examples:
	@set -e; for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null; done; echo all examples OK

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis out
	find . -name __pycache__ -type d -exec rm -rf {} +
