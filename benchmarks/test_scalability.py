"""Bench: scalability walls (Sections IV-B/IV-C, VI-A discussion)."""

from conftest import record_result
from repro.experiments.scalability import run


def test_scalability(benchmark):
    result = benchmark.pedantic(run, kwargs={"sizes": (1000, 3725)}, rounds=1, iterations=1)
    record_result(result)
    vs = result.get("max_K VS")
    # the paper's K=15 pin wall for virtualized-separate
    assert (vs == 15).all()
    # merged walls tighten with lower alpha
    assert (result.get("max_K VM(a=20%)") < result.get("max_K VM(a=80%)")).all()
