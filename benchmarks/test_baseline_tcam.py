"""Bench: B1 — TCAM baseline vs the trie pipeline (related work)."""

import numpy as np

from conftest import record_result
from repro.baselines.tcam import TcamModel
from repro.core.estimator import base_trie_stats
from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig
from repro.reporting.result import ExperimentResult


def run_tcam_comparison(search_rates=(50.0, 100.0, 150.0, 200.0)) -> ExperimentResult:
    """Dynamic lookup power: trie pipeline vs TCAM variants."""
    rates = tuple(search_rates)
    stats = base_trie_stats(SyntheticTableConfig())
    stage_map = engine_stage_map(stats, 28)
    model = AnalyticalPowerModel(SpeedGrade.G2)
    result = ExperimentResult(
        experiment_id="baseline_tcam",
        title="B1: lookup dynamic power — trie pipeline vs TCAM (W)",
        x_label="search_rate_MHz",
        x_values=np.asarray(rates, dtype=float),
    )
    result.add_series(
        "trie_pipeline",
        [model.power_vs([stage_map], f, np.array([1.0])).dynamic_w for f in rates],
    )
    for label, tcam in (
        ("tcam_conventional", TcamModel.conventional(3725)),
        ("tcam_blocked_8", TcamModel.blocked(3725, 8)),
        ("tcam_ipstash", TcamModel.ipstash(3725)),
    ):
        result.add_series(label, [tcam.dynamic_power_w(f) for f in rates])
    result.add_note(
        "paper Section II-B: TCAM is power hungry due to massively parallel "
        "search; partitioning ([20]) and IPStash ([10]) narrow but do not "
        "close the gap to the trie pipeline"
    )
    return result


def test_baseline_tcam(benchmark):
    result = benchmark(run_tcam_comparison)
    record_result(result)
    trie = result.get("trie_pipeline")
    conventional = result.get("tcam_conventional")
    ipstash = result.get("tcam_ipstash")
    assert (trie < conventional).all()
    assert np.allclose(ipstash / conventional, 0.65)
