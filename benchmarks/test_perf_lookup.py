"""Performance benches: lookup-substrate throughput.

Unlike the figure benches, these time the library's hot paths — trie
construction, batch lookups, leaf pushing, merging — so performance
regressions in the data structures are caught alongside the science.
"""

import time

import numpy as np
import pytest

from repro.iplookup.leafpush import leaf_push
from repro.iplookup.multibit import MultibitTrie
from repro.iplookup.patricia import PatriciaTrie
from repro.iplookup.synth import SyntheticTableConfig, generate_table, generate_virtual_tables
from repro.iplookup.trie import UnibitTrie
from repro.obs.registry import REGISTRY
from repro.serve.service import LookupService
from repro.virt.merged import merge_tries

TABLE = SyntheticTableConfig(n_prefixes=2000, seed=5)


@pytest.fixture(scope="module")
def table():
    return generate_table(TABLE)


@pytest.fixture(scope="module")
def pushed(table):
    return leaf_push(UnibitTrie(table))


@pytest.fixture(scope="module")
def addresses():
    rng = np.random.default_rng(9)
    return rng.integers(0, 2**32, size=20_000, dtype=np.uint64).astype(np.uint32)


def test_perf_table_generation(benchmark):
    table = benchmark(generate_table, TABLE)
    assert len(table) == 2000


def test_perf_trie_build(benchmark, table):
    trie = benchmark(UnibitTrie, table)
    assert trie.num_prefixes == 2000


def test_perf_leaf_push(benchmark, table):
    trie = UnibitTrie(table)
    pushed = benchmark(leaf_push, trie)
    assert pushed.is_leaf_pushed()


def test_perf_batch_lookup(benchmark, pushed, addresses):
    """Vectorized lookup rate over 20 k addresses."""
    results = benchmark(pushed.lookup_batch, addresses)
    assert len(results) == len(addresses)


def test_perf_scalar_lookup(benchmark, pushed, addresses):
    def run_1000():
        for a in addresses[:1000]:
            pushed.lookup(int(a))

    benchmark(run_1000)


def test_perf_multibit_batch_lookup(benchmark, table, addresses):
    trie = MultibitTrie(table, stride=4)
    results = benchmark(trie.lookup_batch, addresses)
    assert len(results) == len(addresses)


def test_perf_patricia_build(benchmark, table):
    patricia = benchmark(PatriciaTrie, table)
    assert patricia.num_nodes > 0


def test_perf_merge_four_tables(benchmark):
    tables = generate_virtual_tables(4, 0.5, SyntheticTableConfig(n_prefixes=800, seed=6))
    tries = [UnibitTrie(t) for t in tables]
    merged = benchmark(merge_tries, tries)
    assert merged.k == 4


def test_perf_serve_metrics_enabled(benchmark):
    """Serve throughput with the metrics registry enabled."""
    tables = generate_virtual_tables(4, 0.5, SyntheticTableConfig(n_prefixes=800, seed=6))
    service = LookupService(tables, n_stages=28)
    rng = np.random.default_rng(3)
    addresses = rng.integers(0, 2**32, size=20_000, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, 4, size=20_000, dtype=np.int64)
    REGISTRY.enable()
    try:
        results = benchmark(service.serve, addresses, vnids)
    finally:
        REGISTRY.disable()
        REGISTRY.clear()
    assert len(results[0]) == len(addresses)


def test_serve_metrics_overhead():
    """Gate: metrics-enabled serving within 5 % of the disabled path.

    Measured with best-of-N wall times rather than pytest-benchmark so
    the comparison runs in one process with identical state; the
    disabled path is the byte-identical fast path (one flag check), so
    this bounds the per-batch bincount + counter cost.

    Note: the nominal ``LookupService._latency_estimate()`` is now
    cached after the first batch (the scheme/ρ/f inputs are fixed at
    construction). Before/after on this rig: ~2.2 µs per call uncached
    vs ~0.1 µs cached (≈27×) — ~0.1 % of a 20 k-lookup batch, so the
    cache tightens small-batch serving without moving this 5 % gate.
    """
    tables = generate_virtual_tables(4, 0.5, SyntheticTableConfig(n_prefixes=800, seed=6))
    service = LookupService(tables, n_stages=28)
    rng = np.random.default_rng(3)
    addresses = rng.integers(0, 2**32, size=50_000, dtype=np.uint64).astype(np.uint32)
    vnids = rng.integers(0, 4, size=50_000, dtype=np.int64)

    def best_of(n: int) -> float:
        best = float("inf")
        for _ in range(n):
            start = time.perf_counter()
            service.serve(addresses, vnids)
            best = min(best, time.perf_counter() - start)
        return best

    service.serve(addresses, vnids)  # warm caches (frozen arrays etc.)
    disabled = best_of(7)
    REGISTRY.enable()
    try:
        enabled = best_of(7)
    finally:
        REGISTRY.disable()
        REGISTRY.clear()
    assert enabled <= disabled * 1.05, (
        f"metrics overhead {enabled / disabled - 1:+.1%} exceeds 5% "
        f"(disabled {disabled * 1e3:.2f} ms, enabled {enabled * 1e3:.2f} ms)"
    )
