"""Bench: Table III — BRAM power-model fit."""

import numpy as np

from conftest import record_result
from repro.experiments.table3_bram_model import run


def test_table3_bram_model(benchmark):
    result = benchmark(run)
    record_result(result)
    assert np.allclose(result.get("paper"), result.get("fitted"), rtol=1e-9)
