"""Bench: headline claims C1 (savings ∝ K) and C2 (-1L tradeoff)."""

import numpy as np

from conftest import record_result
from repro.experiments.claims import run


def test_claims(benchmark):
    result = benchmark(run)
    record_result(result)
    k = result.x_values
    savings = result.get("savings_NV_minus_VS_W")
    # C1: proportional to K with slope ≈ one device's static power
    slope, intercept = np.polyfit(k, savings, 1)
    assert 4.0 <= slope <= 5.0
    residual = savings - (slope * k + intercept)
    assert np.abs(residual).max() < 0.1
    # C2: -1L ≈ 30 % less power, near-equal mW/Gbps
    assert np.abs(result.get("power_ratio_1L_over_2") - 0.70).max() < 0.06
    assert np.abs(result.get("mw_per_gbps_ratio_1L_over_2") - 1.0).max() < 0.10
