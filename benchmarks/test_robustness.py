"""Bench: model error bound across independent tables."""


from conftest import record_result
from repro.experiments.robustness import run


def test_robustness(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs={"cases": ((101, 2000), (202, 3725), (303, 5000)), "ks": (2, 8, 15)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    for label in result.labels():
        assert (result.get(label) <= 3.0).all(), f"{label} broke the paper bound"
