"""Bench: Fig. 3 — per-stage logic and signal power vs frequency."""

import numpy as np

from conftest import record_result
from repro.experiments.fig3_logic_power import run


def test_fig3_logic_power(benchmark):
    result = benchmark(run)
    record_result(result)
    f = result.x_values
    # the published per-stage lines (Section V-C)
    assert np.allclose(result.get("total (-2)"), 5.180 * f / 1000)
    assert np.allclose(result.get("total (-1L)"), 3.937 * f / 1000)
