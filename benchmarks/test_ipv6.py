"""Bench: IPv6 outlook — the paper's architecture at 128 bits."""

from conftest import record_result
from repro.experiments.ipv6_outlook import run


def test_ipv6_outlook(benchmark):
    result = benchmark.pedantic(
        run, kwargs={"n_prefixes": 1000, "k": 8}, rounds=1, iterations=1
    )
    record_result(result)
    # IPv6 needs a deeper pipeline and more memory at equal table size
    assert result.get("stages")[1] > result.get("stages")[0]
    assert result.get("merged_memory_Mb")[1] > result.get("merged_memory_Mb")[0]
