"""Bench: provisioning agility per scheme."""


from conftest import record_result
from repro.analysis.agility import run
from repro.iplookup.synth import SyntheticTableConfig


def test_agility(benchmark):
    result = benchmark.pedantic(
        run,
        kwargs={"ks": (2, 4, 8), "table": SyntheticTableConfig(n_prefixes=1000, seed=99)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # separate provisions without interrupting service; merged stalls
    assert (result.get("VS_interruption_ms") == 0).all()
    assert (result.get("VM_interruption_ms") > 0).all()
