"""Bench: Fig. 6 — total power of the virtualized schemes."""

import numpy as np
import pytest

from conftest import record_result
from repro.experiments.fig6_virtualized_power import run
from repro.fpga.speedgrade import SpeedGrade


@pytest.mark.parametrize("grade", [SpeedGrade.G2, SpeedGrade.G1L], ids=["g2", "g1l"])
def test_fig6_virtualized_power(benchmark, grade):
    result = benchmark(run, grade)
    record_result(result)
    vs = result.get("VS")
    # paper: experimental VS power *decreases* with K
    assert vs[-1] < vs[0]
    assert np.polyfit(result.x_values, vs, 1)[0] < 0
    # merged grows with K
    for label in ("VM(a=80%)", "VM(a=20%)"):
        assert result.get(label)[-1] > result.get(label)[0]
