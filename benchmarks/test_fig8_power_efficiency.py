"""Bench: Fig. 8 — power per unit throughput (mW/Gbps)."""

import numpy as np
import pytest

from conftest import record_result
from repro.experiments.fig8_power_efficiency import run
from repro.fpga.speedgrade import SpeedGrade


@pytest.mark.parametrize("grade", [SpeedGrade.G2, SpeedGrade.G1L], ids=["g2", "g1l"])
def test_fig8_power_efficiency(benchmark, grade):
    result = benchmark(run, grade)
    record_result(result)
    # paper ordering at high K: VS best, NV second, merged worst
    at_max = {label: result.get(label)[-1] for label in result.labels()}
    assert at_max["VS"] < at_max["NV"] < at_max["VM(a=80%)"] < at_max["VM(a=20%)"]
    # VS efficiency improves monotonically with K
    assert (np.diff(result.get("VS")) < 0).all()
