"""Bench: voltage scaling behind the -1L grade."""

import numpy as np

from conftest import record_result
from repro.experiments.voltage import run


def test_voltage(benchmark):
    result = benchmark(run)
    record_result(result)
    assert (np.diff(result.get("dynamic_ratio")) > 0).all()
    # static falls below dynamic at reduced voltage (cubic vs quadratic)
    assert (result.get("static_ratio")[:-1] < result.get("dynamic_ratio")[:-1]).all()
