"""Bench: Fig. 7 — model error vs experimental, ≤ ±3 %."""

import numpy as np
import pytest

from conftest import record_result
from repro.experiments.fig7_model_error import run
from repro.fpga.speedgrade import SpeedGrade


@pytest.mark.parametrize("grade", [SpeedGrade.G2, SpeedGrade.G1L], ids=["g2", "g1l"])
def test_fig7_model_error(benchmark, grade):
    result = benchmark(run, grade)
    record_result(result)
    # claim C3: every point within the paper's ±3 % bound
    for label in result.labels():
        assert np.abs(result.get(label)).max() <= 3.0
    # NV/VS error below the merged error (paper Section VI-A)
    nv_vs = max(np.abs(result.get("NV")).max(), np.abs(result.get("VS")).max())
    vm = max(
        np.abs(result.get("VM(a=80%)")).max(),
        np.abs(result.get("VM(a=20%)")).max(),
    )
    assert vm > nv_vs
