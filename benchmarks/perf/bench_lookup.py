#!/usr/bin/env python
"""Launcher for the lookup perf harness (see :mod:`repro.serve.perf`).

Run from the repository root::

    python benchmarks/perf/bench_lookup.py [--smoke] [--pairs N] ...

Writes ``BENCH_lookup.json`` at the repo root (override with --out).
The timing logic lives in ``src/repro/serve/perf.py`` so it is
covered by the test suite, repro-lint, ruff and mypy; this file only
makes it runnable without installing the package.
"""

import os
import sys

if __name__ == "__main__":
    try:
        from repro.serve.perf import main
    except ImportError:
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        sys.path.insert(0, os.path.join(repo_root, "src"))
        from repro.serve.perf import main
    raise SystemExit(main())
