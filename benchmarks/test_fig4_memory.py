"""Bench: Fig. 4 — pointer and NHI memory vs K."""

from conftest import record_result
from repro.experiments.fig4_memory import run


def test_fig4_memory(benchmark):
    result = benchmark(run)
    record_result(result)
    sep = result.get("pointer separate")
    vm80 = result.get("pointer merged a=80%")
    vm20 = result.get("pointer merged a=20%")
    # paper shape: pointer saving grows with alpha
    assert (vm80[1:] < vm20[1:]).all()
    assert (vm20[1:] < sep[1:]).all()
    # NHI: merged never below separate (K-wide leaf vectors)
    assert (result.get("NHI merged a=20%")[1:] >= result.get("NHI separate")[1:]).all()
