"""Bench: B2 — braided vs plain merging efficiency."""


from conftest import record_result
from repro.experiments.braiding_gain import run


def test_baseline_braiding(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    plain = result.get("plain_alpha")
    braided = result.get("braided_alpha")
    # braiding never does much worse, and alpha grows with real overlap
    assert (braided >= plain - 0.05).all()
    assert plain[-1] > plain[0]
