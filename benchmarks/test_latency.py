"""Bench: latency transparency under load."""

import numpy as np

from conftest import record_result
from repro.experiments.latency import run


def test_latency(benchmark):
    result = benchmark.pedantic(run, kwargs={"k": 8}, rounds=1, iterations=1)
    record_result(result)
    vs = result.get("VS_total_ns")
    vm = result.get("VM_total_ns")
    finite = np.isfinite(vm)
    # separate stays near the pipeline floor; merged climbs with load
    assert (vm[finite] >= vs[finite]).all()
    assert np.nanmax(vm) > 1.2 * np.nanmin(vm)
