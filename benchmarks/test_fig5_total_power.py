"""Bench: Fig. 5 — total power, all schemes, both speed grades."""

import numpy as np
import pytest

from conftest import record_result
from repro.experiments.fig5_total_power import run
from repro.fpga.speedgrade import SpeedGrade


@pytest.mark.parametrize("grade", [SpeedGrade.G2, SpeedGrade.G1L], ids=["g2", "g1l"])
def test_fig5_total_power(benchmark, grade):
    result = benchmark(run, grade)
    record_result(result)
    nv = result.get("NV")
    vs = result.get("VS")
    # paper shape: NV proportional to K, virtualized near one device
    assert nv[-1] > 10 * vs[-1]
    slope = np.polyfit(result.x_values, nv, 1)[0]
    assert slope > 0
    # VM(20%) above VM(80%) for K > 1
    assert (result.get("VM(a=20%)")[1:] > result.get("VM(a=80%)")[1:]).all()
