"""Bench: ablations A1–A6 (DESIGN.md §4)."""

import numpy as np

from conftest import record_result
from repro.analysis.sweeps import (
    alpha_sweep,
    duty_cycle_sweep,
    frequency_sweep,
    leafpush_ablation,
    table_size_sweep,
    utilization_sweep,
)


def test_a1_utilization_skew(benchmark):
    result = benchmark(utilization_sweep)
    record_result(result)
    totals = result.get("model_total_W")
    assert totals.max() - totals.min() < 1e-9  # Assumption-1 invariance
    assert (np.diff(result.get("sustainable_aggregate_Gbps")) < 0).all()


def test_a2_alpha_sensitivity(benchmark):
    result = benchmark(alpha_sweep)
    record_result(result)
    for k in (2, 8, 15):
        memory = result.get(f"memory_Mb K={k}")
        finite = memory[np.isfinite(memory)]
        assert (np.diff(finite) < 0).all()  # memory falls as overlap grows


def test_a3_frequency_tradeoff(benchmark):
    result = benchmark(frequency_sweep)
    record_result(result)
    assert (np.diff(result.get("model_total_W")) > 0).all()
    assert (np.diff(result.get("model_mW_per_Gbps")) < 0).all()


def test_a4_table_size_scaling(benchmark):
    result = benchmark.pedantic(table_size_sweep, rounds=1, iterations=1)
    record_result(result)
    assert (np.diff(result.get("separate_memory_Mb")) > 0).all()
    # merged with alpha=0.8 always below separate
    assert (result.get("merged_memory_Mb") < result.get("separate_memory_Mb")).all()


def test_a5_clock_gating(benchmark):
    result = benchmark(duty_cycle_sweep)
    record_result(result)
    gated = result.get("gated_dynamic_W")
    ungated = result.get("ungated_dynamic_W")
    assert (ungated >= gated).all()
    # at 5 % duty the paper's gating saves the vast majority of dynamic power
    assert gated[0] < 0.05 * ungated[0]


def test_a6_leaf_pushing(benchmark):
    result = benchmark(leafpush_ablation)
    record_result(result)
    assert result.get("pushed_nodes")[0] > result.get("plain_nodes")[0]


def test_a7_stride_tradeoff(benchmark):
    from repro.analysis.sweeps import stride_sweep

    result = benchmark.pedantic(stride_sweep, rounds=1, iterations=1)
    record_result(result)
    assert (np.diff(result.get("pipeline_stages")) < 0).all()
    assert (np.diff(result.get("logic_W")) < 0).all()


def test_a8_temperature(benchmark):
    from repro.analysis.sweeps import temperature_sweep

    result = benchmark(temperature_sweep)
    record_result(result)
    assert (np.diff(result.get("static_W")) > 0).all()


def test_a9_heterogeneity(benchmark):
    from repro.analysis.sweeps import heterogeneity_sweep

    result = benchmark.pedantic(
        heterogeneity_sweep, kwargs={"k": 4}, rounds=1, iterations=1
    )
    record_result(result)
    assert (result.get("merged_memory_Mb") < result.get("separate_memory_Mb")).all()


def test_a10_structure_comparison(benchmark):
    from repro.analysis.sweeps import structure_comparison

    result = benchmark.pedantic(structure_comparison, rounds=1, iterations=1)
    record_result(result)
    nodes = result.get("nodes")
    # patricia (row 2) compresses below the plain trie (row 0);
    # multibit stride-4 (row 3) has fewest nodes but most memory/node
    assert nodes[2] < nodes[0]
    assert result.get("pipeline_stages")[3] < result.get("pipeline_stages")[0]


def test_a11_memory_balancing(benchmark):
    from repro.analysis.sweeps import balancing_sweep

    result = benchmark.pedantic(
        balancing_sweep, kwargs={"ks": (4,)}, rounds=1, iterations=1
    )
    record_result(result)
    assert (result.get("balanced_fmax_MHz") > result.get("naive_fmax_MHz")).all()
    assert (
        result.get("balanced_mW_per_Gbps") < result.get("naive_mW_per_Gbps")
    ).all()
