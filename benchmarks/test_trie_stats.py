"""Bench: Section V-E reference trie statistics."""

from conftest import record_result
from repro.experiments.trie_stats import run


def test_trie_stats(benchmark):
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    record_result(result)
    paper = result.get("paper")
    synth = result.get("synthetic")
    assert synth[0] == paper[0]  # 3725 prefixes exactly
    assert abs(synth[1] - paper[1]) / paper[1] < 0.20
    assert abs(synth[2] - paper[2]) / paper[2] < 0.05
