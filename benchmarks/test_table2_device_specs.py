"""Bench: Table II — device specs."""

import numpy as np

from conftest import record_result
from repro.experiments.table2_device import run


def test_table2_device_specs(benchmark):
    result = benchmark(run)
    record_result(result)
    assert np.array_equal(result.get("paper"), result.get("catalog"))
