"""Bench: Fig. 2 — BRAM power vs frequency."""

import numpy as np

from conftest import record_result
from repro.experiments.fig2_bram_power import run


def test_fig2_bram_power(benchmark):
    result = benchmark(run)
    record_result(result)
    # paper shape: monotone in frequency, 36 Kb above 18 Kb, -1L below -2
    for label in result.labels():
        assert (np.diff(result.get(label)) > 0).all()
    assert (result.get("36Kb (-2)") > result.get("18Kb (-2)")).all()
    assert (result.get("18Kb (-1L)") < result.get("18Kb (-2)")).all()
