"""Benchmark-harness plumbing.

Each benchmark regenerates one paper table/figure.  Because pytest
captures stdout, the rendered rows are collected here and printed in
the terminal summary, so ``pytest benchmarks/ --benchmark-only``
shows both the timing table and the reproduced data.
"""

from __future__ import annotations

_RENDERED: list[str] = []


def record_result(result) -> None:
    """Register an ExperimentResult for end-of-run display."""
    _RENDERED.append(result.render())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED:
        return
    terminalreporter.section("reproduced paper tables/figures")
    for text in _RENDERED:
        terminalreporter.write(text)
        terminalreporter.write("\n")
