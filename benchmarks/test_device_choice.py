"""Bench: device exploration across the Virtex-6 catalog."""


from conftest import record_result
from repro.experiments.device_choice import run


def test_device_choice(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result)
    max_k = result.get("max_K")
    # the paper's LX760 (largest pin budget) reaches the paper's K=15
    assert max_k.max() == 15
    # at least one smaller part cannot host the K=8 deployment
    assert result.get("fits_K8").min() == 0.0
