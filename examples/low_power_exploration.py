#!/usr/bin/env python3
"""Low-power FPGA exploration (paper Section VI contribution #2).

Edge networks have low duty cycles — the equipment is on all day but
forwards packets a fraction of the time.  This example explores the
two power levers the paper highlights:

1. the **-1L low-power speed grade** (~30 % less power, ~30 % less
   throughput, same mW/Gbps), and
2. **clock gating** idle stages (Section IV's idle model),

across realistic duty cycles, and reports the operating point a
power-conscious edge deployment should pick.

Run:  python examples/low_power_exploration.py
"""

import numpy as np

from repro import ScenarioConfig, ScenarioEstimator, Scheme, SpeedGrade
from repro.analysis.sweeps import duty_cycle_sweep
from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map
from repro.core.estimator import base_trie_stats
from repro.fpga.clocking import ClockGating
from repro.iplookup.synth import SyntheticTableConfig
from repro.units import w_to_mw

K = 8


def grade_comparison() -> None:
    print("=== speed grade -2 vs -1L (VS, K=8, full load) ===")
    estimator = ScenarioEstimator()
    rows = []
    for grade in (SpeedGrade.G2, SpeedGrade.G1L):
        r = estimator.evaluate(ScenarioConfig(scheme=Scheme.VS, k=K, grade=grade))
        rows.append(r)
        print(
            f"  grade {grade}: {r.experimental.total_w:5.2f} W, "
            f"{r.throughput_gbps:7.1f} Gbps, {r.experimental_mw_per_gbps:5.2f} mW/Gbps"
        )
    power_saving = 1 - rows[1].experimental.total_w / rows[0].experimental.total_w
    throughput_cost = 1 - rows[1].throughput_gbps / rows[0].throughput_gbps
    print(
        f"  -1L saves {power_saving:.0%} power for {throughput_cost:.0%} lower "
        "throughput — near-identical mW/Gbps, as the paper reports.\n"
    )


def duty_cycle_analysis() -> None:
    print("=== clock gating across duty cycles (VS, K=8, grade -2) ===")
    sweep = duty_cycle_sweep(duty_cycles=(0.05, 0.1, 0.25, 0.5, 1.0), k=K)
    print(sweep.render())


def edge_operating_point() -> None:
    """A 10 %-duty edge deployment: combine both levers."""
    print("=== combined: 10% duty edge deployment ===")
    stats = base_trie_stats(SyntheticTableConfig())
    stage_map = engine_stage_map(stats, 28)
    mu = np.full(K, 1.0 / K)
    for grade in (SpeedGrade.G2, SpeedGrade.G1L):
        for gated in (True, False):
            model = AnalyticalPowerModel(
                grade,
                clock_gating=ClockGating(gate_logic=gated, gate_memory=gated),
            )
            p = model.power_vs([stage_map] * K, 250.0, mu, duty_cycle=0.1)
            print(
                f"  grade {grade}, gating {'on ' if gated else 'off'}: "
                f"total {p.total_w:5.2f} W (dynamic {w_to_mw(p.dynamic_w):6.1f} mW)"
            )
    print(
        "\n  static power dominates at low duty: the biggest lever for idle\n"
        "  edge equipment is the low-power grade; gating trims the rest."
    )


if __name__ == "__main__":
    grade_comparison()
    duty_cycle_analysis()
    edge_operating_point()
