#!/usr/bin/env python3
"""BGP churn: route updates, incremental tries, and the write-rate loop.

The paper's BRAM model assumes a 1 % write rate ("low update rate",
Section V-B).  This example derives that number instead of assuming
it: it runs a BGP-like announce/withdraw stream against a 4-network
virtualized router, maintains the per-VN tries incrementally (pruning
withdrawn branches), measures the memory writes per update, converts
the update rate into an effective BRAM write rate, and shows its
(deliberately tiny) effect on the power estimate.

Run:  python examples/bgp_churn.py
"""

import numpy as np

from repro import SyntheticTableConfig, generate_virtual_tables
from repro.core.estimator import base_trie_stats
from repro.core.power import AnalyticalPowerModel
from repro.core.resources import engine_stage_map
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.updates import synthesize_churn
from repro.virt.manager import VirtualRouterManager

K = 4
TABLE = SyntheticTableConfig(n_prefixes=800, seed=21)
UPDATES_PER_VN = 500
UPDATES_PER_SECOND = 250_000  # an aggressive BGP feed
LOOKUP_RATE_MHZ = 300.0


def main() -> None:
    tables = generate_virtual_tables(K, 0.5, TABLE)
    manager = VirtualRouterManager(tables)
    print(f"managing {K} virtual networks, {len(tables[0])} prefixes each")

    # 1. apply churn per VN, keeping the data plane consistent ------------
    for vn in range(K):
        updates = synthesize_churn(manager.table(vn), UPDATES_PER_VN, seed=vn)
        manager.apply(vn, updates)
        stats = manager.update_stats(vn)
        print(
            f"  vn{vn}: {stats.announces} announces, {stats.withdraws} withdraws, "
            f"{stats.no_ops} no-ops -> {stats.memory_writes} memory writes "
            f"(mean {stats.mean_writes_per_update():.1f}/update, "
            f"worst {stats.max_writes_per_update()})"
        )
    assert manager.verify_consistency(), "data plane must match the RIBs"
    print(f"consistency verified; merged view rebuilt {manager.merged_rebuilds}x")

    # 2. update rate → effective BRAM write rate ---------------------------
    write_rate = manager.write_rate(UPDATES_PER_SECOND, LOOKUP_RATE_MHZ)
    print(
        f"\n{UPDATES_PER_SECOND:,} updates/s at {LOOKUP_RATE_MHZ:.0f} MHz "
        f"-> effective write rate {write_rate:.4%} "
        f"(paper assumes 1%)"
    )

    # 3. effect on the power estimate --------------------------------------
    stats = base_trie_stats(TABLE)
    stage_map = engine_stage_map(stats, 28)
    mu = np.full(K, 1.0 / K)
    idle_model = AnalyticalPowerModel(SpeedGrade.G2, write_rate=0.0)
    churn_model = AnalyticalPowerModel(SpeedGrade.G2, write_rate=write_rate)
    paper_model = AnalyticalPowerModel(SpeedGrade.G2, write_rate=0.01)
    for label, model in (
        ("no updates", idle_model),
        ("measured churn", churn_model),
        ("paper's 1%", paper_model),
    ):
        p = model.power_vs([stage_map] * K, LOOKUP_RATE_MHZ, mu)
        print(f"  VS power, write rate = {label:>14}: {p.total_w:.4f} W")
    print(
        "\nwrite traffic barely moves total power — the paper's 'low update\n"
        "rate' assumption is safe even under aggressive BGP churn."
    )


if __name__ == "__main__":
    main()
