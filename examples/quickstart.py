#!/usr/bin/env python3
"""Quickstart: estimate the power of one virtualized router scenario.

Evaluates an 8-network virtualized-separate deployment on the paper's
Virtex-6 XC6VLX760 at speed grade -2 and prints the analytical model
(Eq. 4), the simulated post place-and-route measurement, and the
mW/Gbps efficiency metric — then contrasts it with the conventional
(non-virtualized) deployment of the same 8 networks.

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, ScenarioEstimator, Scheme, SpeedGrade
from repro.reporting.tables import render_kv
from repro.units import w_to_mw


def describe(result, title: str) -> None:
    print(f"--- {title} ---")
    print(
        render_kv(
            [
                ("devices", str(result.resources.devices)),
                ("engines", str(result.n_engines)),
                ("achieved clock", f"{result.fmax_mhz:.1f} MHz"),
                ("model power (analytical)", f"{result.model.total_w:.2f} W"),
                ("  static", f"{result.model.static_w:.2f} W"),
                ("  logic", f"{w_to_mw(result.model.logic_w):.1f} mW"),
                ("  memory", f"{w_to_mw(result.model.memory_w):.1f} mW"),
                ("experimental power (post-P&R)", f"{result.experimental.total_w:.2f} W"),
                ("model error", f"{result.percentage_error:+.2f} %"),
                ("aggregate capacity", f"{result.throughput_gbps:.0f} Gbps"),
                ("efficiency", f"{result.experimental_mw_per_gbps:.2f} mW/Gbps"),
            ]
        )
    )


def main() -> None:
    estimator = ScenarioEstimator()
    k = 8

    virtualized = estimator.evaluate(
        ScenarioConfig(scheme=Scheme.VS, k=k, grade=SpeedGrade.G2)
    )
    describe(virtualized, f"virtualized-separate, K={k} networks on one FPGA")

    conventional = estimator.evaluate(
        ScenarioConfig(scheme=Scheme.NV, k=k, grade=SpeedGrade.G2)
    )
    describe(conventional, f"non-virtualized, {k} dedicated FPGAs")

    saving = conventional.experimental.total_w - virtualized.experimental.total_w
    print(
        f"Consolidating {k} edge routers onto one device saves "
        f"{saving:.1f} W ({saving / conventional.experimental.total_w:.0%}) — "
        "the paper's headline result: savings proportional to K."
    )


if __name__ == "__main__":
    main()
