#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs the full experiment registry — Tables II–III, Figures 2–8 (both
speed-grade panels), the trie statistics and the headline-claim checks
— prints each as an ASCII table, and exports CSVs to ``out/figures``.

Equivalent CLI:  repro-experiments --csv out/figures

Run:  python examples/paper_figures.py
"""

import os

from repro.experiments.runner import run_experiment
from repro.reporting.registry import all_experiments

OUT_DIR = os.path.join("out", "figures")

#: run in the paper's presentation order
ORDER = [
    "table2",
    "fig2",
    "table3",
    "fig3",
    "trie_stats",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "claims",
]


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    registered = all_experiments()
    missing = [e for e in ORDER if e not in registered]
    assert not missing, f"experiments not registered: {missing}"

    for experiment_id in ORDER:
        results = run_experiment(experiment_id)
        for i, result in enumerate(results):
            print(result.render())
            suffix = f"_{i}" if len(results) > 1 else ""
            path = os.path.join(OUT_DIR, f"{experiment_id}{suffix}.csv")
            result.write_csv(path)
    print(f"CSV exports written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
