#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Drives the experiment engine over the paper artifacts — Tables II–III,
Figures 2–8 (both speed-grade panels expanded from the grade axis),
the trie statistics and the headline-claim checks — prints each as an
ASCII table, and exports CSVs to ``out/figures``.  Grade-swept figures
get grade-suffixed files (``fig8_G2.csv``, ``fig8_G1L.csv``).

Equivalent CLI:  repro-experiments --tag paper --csv out/figures

Run:  python examples/paper_figures.py
"""

import os

from repro.experiments.engine import ExperimentEngine
from repro.reporting.registry import all_specs
from repro.reporting.result import ExperimentResult

OUT_DIR = os.path.join("out", "figures")

#: run in the paper's presentation order
ORDER = [
    "table2",
    "fig2",
    "table3",
    "fig3",
    "trie_stats",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "claims",
]


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    registered = all_specs()
    missing = [e for e in ORDER if e not in registered]
    assert not missing, f"experiments not registered: {missing}"

    engine = ExperimentEngine(cache=None)  # always regenerate fresh
    for record in engine.run_ids(ORDER, fail_fast=True):
        assert record.error is None, record.error
        assert isinstance(record.result, ExperimentResult)
        print(record.result.render())
        record.result.write_csv(os.path.join(OUT_DIR, f"{record.request.name}.csv"))
    print(f"CSV exports written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
