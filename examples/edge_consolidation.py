#!/usr/bin/env python3
"""Edge-router consolidation with *real* (synthetic-BGP) tables.

An ISP consolidates 6 edge routers onto one FPGA.  Unlike the paper's
analytical sweeps (which assume identical tables and a given α), this
example builds six actual routing tables with partial overlap, merges
their tries, *measures* the merging efficiency, verifies that both
virtualized data planes forward identically to each network's own
table, and then asks the scheme advisor what to deploy.

Run:  python examples/edge_consolidation.py
"""

import numpy as np

from repro import (
    ScenarioConfig,
    ScenarioEstimator,
    Scheme,
    SyntheticTableConfig,
    UnibitTrie,
    generate_virtual_tables,
    leaf_push,
    merge_tries,
)
from repro.analysis.advisor import recommend_scheme
from repro.virt.separate import SeparateVirtualRouter
from repro.virt.traffic import TrafficModel

K = 6
TABLE = SyntheticTableConfig(n_prefixes=1200, seed=7)


def main() -> None:
    # 1. six edge tables sharing ~60 % of their structure ------------------
    tables = generate_virtual_tables(K, shared_fraction=0.6, config=TABLE)
    print(f"built {K} edge tables, {len(tables[0])} prefixes each")

    # 2. build both virtualized data planes ---------------------------------
    separate = SeparateVirtualRouter(tables)
    merged = merge_tries([leaf_push(UnibitTrie(t)) for t in tables])
    print(
        f"merged trie: {merged.num_nodes} nodes, measured merging efficiency "
        f"alpha_global={merged.global_alpha:.2f} "
        f"(pairwise {merged.pairwise_alpha:.2f})"
    )

    # 3. functional check: both planes forward exactly like the per-network
    #    tables under Assumption-1 traffic ----------------------------------
    traffic = TrafficModel.uniform(K)
    addresses, vnids = traffic.generate(5000, tables, seed=1)
    oracle = np.array(
        [tables[v].lookup_linear(int(a)) for a, v in zip(addresses, vnids)]
    )
    assert np.array_equal(separate.lookup_batch(addresses, vnids), oracle)
    assert np.array_equal(merged.lookup_batch(addresses, vnids), oracle)
    print(f"forwarding verified on {len(addresses)} packets across {K} VNs")

    # 4. power: drive the models with the *measured* alpha ------------------
    estimator = ScenarioEstimator()
    for scheme, alpha in ((Scheme.NV, None), (Scheme.VS, None), (Scheme.VM, round(merged.pairwise_alpha, 2))):
        result = estimator.evaluate(
            ScenarioConfig(scheme=scheme, k=K, alpha=alpha, table=TABLE)
        )
        print(
            f"  {result.config.label():>16}: {result.experimental.total_w:6.2f} W, "
            f"{result.throughput_gbps:7.1f} Gbps, "
            f"{result.experimental_mw_per_gbps:6.2f} mW/Gbps"
        )

    # 5. what should the ISP deploy? ----------------------------------------
    print("\nadvisor ranking (2 Gbps worst-case per network):")
    for rec in recommend_scheme(K, alpha=merged.pairwise_alpha, per_network_gbps=2.0):
        print(f"  {rec.describe()}")


if __name__ == "__main__":
    main()
