#!/usr/bin/env python3
"""Capacity planning: demands → admission → operating point → frontier.

A planning session for an operator consolidating 10 edge networks with
known worst-case demands:

1. check which schemes can *admit* the demand vector (the merged
   scheme's single engine must carry the aggregate — the paper's
   Section IV-C throughput-sharing limit);
2. verify the admitted shares are actually deliverable with the
   weighted-round-robin scheduler simulation;
3. ask the governor for the cheapest (scheme, grade, frequency)
   operating point meeting the aggregate demand;
4. print the power/throughput Pareto frontier so the operator can see
   what headroom costs.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import ScenarioConfig, ScenarioEstimator, Scheme
from repro.analysis.governor import pareto_frontier, plan_operating_point
from repro.virt.qos import WeightedScheduler, check_admission

K = 10
#: worst-case per-network demands in Gbps (skewed, as edge networks are)
DEMANDS = np.array([18.0, 12.0, 9.0, 7.0, 5.0, 4.0, 3.0, 2.0, 1.5, 1.0])


def admission() -> None:
    print("=== 1. admission: can one merged engine carry this? ===")
    estimator = ScenarioEstimator()
    vm = estimator.evaluate(ScenarioConfig(scheme=Scheme.VM, k=K, alpha=0.8))
    report = check_admission(vm.throughput_gbps, DEMANDS)
    print(
        f"merged engine capacity {report.capacity_gbps:.1f} Gbps, "
        f"aggregate demand {sum(report.demands_gbps):.1f} Gbps -> "
        f"{'ADMIT' if report.admissible else 'REJECT'} "
        f"(utilization {report.utilization:.0%}, headroom {report.headroom_gbps:.1f} Gbps)"
    )

    vs = estimator.evaluate(ScenarioConfig(scheme=Scheme.VS, k=K))
    per_engine = vs.throughput_gbps / K
    ok = (DEMANDS <= per_engine).all()
    print(
        f"separate engines: {per_engine:.1f} Gbps each vs max demand "
        f"{DEMANDS.max():.1f} Gbps -> {'ADMIT' if ok else 'REJECT'}"
    )


def scheduling() -> None:
    print("\n=== 2. scheduling: are the admitted shares deliverable? ===")
    estimator = ScenarioEstimator()
    vm = estimator.evaluate(ScenarioConfig(scheme=Scheme.VM, k=K, alpha=0.8))
    fractions = DEMANDS / vm.throughput_gbps
    scheduler = WeightedScheduler(DEMANDS)
    ok = scheduler.verify_guarantee(fractions, cycles=6000, seed=3)
    print(
        f"weighted round robin at {fractions.sum():.0%} load: "
        f"{'every VN receives its guarantee' if ok else 'GUARANTEE VIOLATED'}"
    )


def operating_point() -> None:
    print("\n=== 3. cheapest operating point for the aggregate demand ===")
    demand = float(DEMANDS.sum())
    point = plan_operating_point(demand, k=K, alpha=0.8, frequency_steps=6)
    print(f"demand {demand:.1f} Gbps -> {point.describe()}")
    print(f"efficiency: {point.mw_per_gbps:.1f} mW/Gbps")


def frontier() -> None:
    print("\n=== 4. power/throughput Pareto frontier (K=10) ===")
    for point in pareto_frontier(k=K, alpha=0.8, frequency_steps=5)[:10]:
        print(f"  {point.describe()}")
    print("  ... pick the cheapest point above your demand line.")


if __name__ == "__main__":
    admission()
    scheduling()
    operating_point()
    frontier()
