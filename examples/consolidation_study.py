#!/usr/bin/env python3
"""Full consolidation study: the library's pieces in one report.

A regional ISP runs 8 edge routers with skewed demands and a 35 % duty
cycle.  One call to :func:`repro.analysis.study.run_study` evaluates
every scheme end to end — device fit, admission, measured power with
model tolerance bounds, latency at the offered load, and provisioning
agility — and prints the report with a recommendation.  The same study
is then repeated on the low-power -1L grade to show the tradeoff.

Run:  python examples/consolidation_study.py
"""

from repro.analysis.study import run_study
from repro.fpga.speedgrade import SpeedGrade
from repro.iplookup.synth import SyntheticTableConfig

DEMANDS_GBPS = [12.0, 9.0, 7.0, 5.0, 4.0, 3.0, 2.0, 1.0]
DUTY_CYCLE = 0.35
TABLE = SyntheticTableConfig(n_prefixes=2000, seed=44)


def main() -> None:
    for grade in (SpeedGrade.G2, SpeedGrade.G1L):
        study = run_study(
            DEMANDS_GBPS, alpha=0.7, duty_cycle=DUTY_CYCLE, grade=grade, table=TABLE
        )
        print(study.render())

    g2 = run_study(DEMANDS_GBPS, alpha=0.7, duty_cycle=DUTY_CYCLE, grade=SpeedGrade.G2, table=TABLE)
    g1l = run_study(DEMANDS_GBPS, alpha=0.7, duty_cycle=DUTY_CYCLE, grade=SpeedGrade.G1L, table=TABLE)
    best2 = g2.recommendation
    best1l = g1l.recommendation
    saving = 1 - best1l.result.experimental.total_w / best2.result.experimental.total_w
    print(
        f"grade takeaway: the -1L deployment saves {saving:.0%} power for the same\n"
        f"recommendation ({best1l.label}); pick it if {best1l.result.throughput_gbps:.0f} Gbps "
        "of aggregate capacity suffices."
    )


if __name__ == "__main__":
    main()
