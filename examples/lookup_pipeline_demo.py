#!/usr/bin/env python3
"""Inside the lookup engine: trie, leaf pushing, pipeline, activity.

A functional walk through the paper's data plane (Section V-D):
build the uni-bit trie for one edge table, leaf-push it, map trie
levels to the 28-stage pipeline, stream packets through the
cycle-level simulator, and show how per-stage memory accesses (the
duty cycle of each stage) feed the power model's activity factors.

Run:  python examples/lookup_pipeline_demo.py
"""

import numpy as np

from repro import SyntheticTableConfig, UnibitTrie, generate_table, leaf_push
from repro.iplookup.mapping import map_trie_to_stages
from repro.iplookup.pipeline import LookupPipeline
from repro.units import KIB, bits_to_mb
from repro.virt.traffic import TrafficModel


def main() -> None:
    # 1. table → trie → leaf-pushed trie -----------------------------------
    table = generate_table(SyntheticTableConfig(n_prefixes=2000, seed=3))
    trie = UnibitTrie(table)
    pushed = leaf_push(trie)
    print(f"table: {len(table)} prefixes")
    print(f"uni-bit trie: {trie.num_nodes} nodes, depth {trie.depth()}")
    print(
        f"leaf-pushed:  {pushed.num_nodes} nodes "
        f"({pushed.stats().internal_nodes} pointer + {pushed.stats().leaf_nodes} NHI)"
    )

    # 2. map levels onto the 28-stage pipeline ------------------------------
    stage_map = map_trie_to_stages(pushed.stats(), n_stages=28)
    print(f"\nstage memories: total {bits_to_mb(stage_map.total_bits):.3f} Mb")
    widest = int(np.argmax(stage_map.bits_per_stage))
    print(
        f"widest stage: {widest} "
        f"({stage_map.bits_per_stage[widest] / KIB:.1f} Kb — sets the BRAM mux depth)"
    )

    # 3. stream packets through the cycle-level simulator -------------------
    pipeline = LookupPipeline(pushed, n_stages=28)
    traffic = TrafficModel.uniform(1, duty_cycle=0.5)
    addresses, _ = traffic.generate(4000, [table], seed=11)
    trace = pipeline.run(addresses, inter_arrival_gap=traffic.inter_arrival_gap())

    oracle = table.lookup_linear_batch(addresses)
    assert np.array_equal(trace.results, oracle), "pipeline must match the RIB oracle"
    print(f"\nsimulated {trace.n_packets} packets in {trace.total_cycles} cycles")
    print(f"per-packet latency: {trace.latency_cycles} cycles")
    print(f"admission rate: {trace.throughput_packets_per_cycle():.2f} packets/cycle")

    # 4. per-stage activity → power-model duty cycles -----------------------
    duty = trace.stage_duty_cycle()
    print("\nstage duty cycles (first 12 stages):")
    for stage in range(12):
        bar = "#" * int(duty[stage] * 40)
        print(f"  stage {stage:2d}: {duty[stage]:5.1%} {bar}")
    print(
        "\ndeep stages see fewer accesses (short walks exit early) — with\n"
        "clock gating, exactly that fraction of their dynamic power is saved."
    )


if __name__ == "__main__":
    main()
